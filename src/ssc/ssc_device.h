// The Solid-State Cache (SSC): the paper's primary contribution.
//
// An SSC is a flash device whose interface and FTL are specialized for
// caching (Sections 3-4):
//
//   * Unified sparse address space: the host addresses the SSC with disk
//     LBNs. Internally a hybrid mapping is kept in sparse hash maps — most
//     cached data is block-mapped (256 KB granularity) and a log-block
//     fraction is page-mapped (4 KB), as in the hybrid FTLs the paper builds
//     on, but keyed by the sparse disk address space rather than a dense
//     device address space.
//
//   * Six-operation consistent interface: write-dirty, write-clean, read,
//     evict, clean, exists, with guarantees G1 (dirty writes durable), G2
//     (clean writes return new data or not-present — never stale) and G3
//     (reads after evict return not-present).
//
//   * Durability: mapping changes are logged via the PersistenceManager.
//     write-dirty and evict commit synchronously; write-clean commits
//     synchronously only when it replaces existing data (the mapping change
//     must be durable, Section 4.2.1) and is group-committed otherwise;
//     clean is always buffered (a crash may revert cleaned blocks to dirty).
//     Internal reclamation (GC, merges, silent eviction) flushes the log
//     before erasing any block so a recovered mapping can never reference
//     reused flash.
//
//   * Silent eviction: garbage collection drops clean blocks instead of
//     copying them. SE-Util (the "SSC" config) keeps a fixed 7% log-block
//     reserve; SE-Merge (the "SSC-R" config) lets the log fraction float up
//     to 20% and prefers creating data blocks by switch merges.
//
// The SSC carries a few spare erase blocks for merge transients but no
// over-provisioned capacity: when space runs out it evicts, which is the
// point (Section 3.3).

#ifndef FLASHTIER_SSC_SSC_DEVICE_H_
#define FLASHTIER_SSC_SSC_DEVICE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/flash/flash_device.h"
#include "src/ftl/block_allocator.h"
#include "src/ftl/ftl_stats.h"
#include "src/sparsemap/sparse_hash_map.h"
#include "src/ssc/persist.h"
#include "src/util/bitmap.h"
#include "src/util/status.h"

namespace flashtier {

class InvariantChecker;

enum class EvictionPolicy : uint8_t {
  kSeUtil,   // "SSC": fixed log reserve, evict min-utilization clean blocks
  kSeMerge,  // "SSC-R": floating log fraction (up to 20%), switch-merge-first
};

struct SscConfig {
  uint64_t capacity_pages = 0;  // nominal cache capacity in 4 KB pages
  EvictionPolicy policy = EvictionPolicy::kSeUtil;
  ConsistencyMode mode = ConsistencyMode::kFull;
  double log_fraction = 0.07;      // SE-Util: fixed; SE-Merge: initial
  double max_log_fraction = 0.20;  // SE-Merge ceiling
  uint32_t group_commit_ops = 10'000;
  uint64_t checkpoint_interval_writes = 1'000'000;
  // Size of the dedicated log region in flash pages (0 = unbounded). The
  // default keeps the region far above what the ratio/interval checkpoint
  // policies let the log reach, so backpressure only engages when those are
  // configured off or the region is deliberately squeezed.
  uint64_t log_region_pages = 4096;
  // Checkpoint entries per segment (torn-write blast radius; 0 = one segment).
  uint64_t checkpoint_segment_entries = 1024;
  uint32_t gc_victims_per_cycle = 4;  // top-k victim blocks per collection
  FlashTimings timings;
  FlashGeometry geometry;  // plane layout template; plane size scales to fit

  // Fault injection (DESIGN.md §5d): forwarded to the FlashDevice. Disabled
  // by default, so ordinary configurations are unaffected.
  FaultPlan fault_plan;
  // How many times a host write that hit a program failure is retried on a
  // freshly allocated log block before reporting kIoError.
  uint32_t program_retry_limit = 4;
  // Self-test knob (flashcheck --break-retry): return erase-failed blocks to
  // the free pool instead of retiring them, so the invariant checker's
  // partition audit provably detects the broken bad-block management.
  bool break_retirement_for_testing = false;

  // ---- Endurance defenses (DESIGN.md §5l) ----

  // Run one static wear-leveling pass every N host writes (0 = only when a
  // caller invokes WearLevelOnce explicitly). Deterministic: the cadence is
  // counted in host writes, not time, so it is identical across thread counts.
  uint32_t wear_level_interval_writes = 0;
  // Wear spread that triggers a static wear-leveling migration.
  uint32_t wear_level_max_diff = 8;
  // Run one patrol-scrub pass (PatrolFlash) every N host writes (0 = off).
  uint32_t patrol_interval_writes = 0;
  // Blocks a single patrol pass may refresh before yielding.
  uint32_t patrol_blocks_per_pass = 4;
};

class SscDevice {
 public:
  explicit SscDevice(const SscConfig& config, SimClock* clock);

  // ---- The SSC interface (Section 4.2.1) ----

  // Insert or update a block with dirty data; durable on return (G1).
  Status WriteDirty(Lbn lbn, uint64_t token);

  // Insert or update a block with clean data; a following read returns the
  // new data or not-present (G2).
  Status WriteClean(Lbn lbn, uint64_t token);

  // Read a block if present, else kNotPresent.
  Status Read(Lbn lbn, uint64_t* token);

  // Evict a block immediately; durable on return (G3).
  Status Evict(Lbn lbn);

  // Mark a block clean so the SSC may silently evict it later. Asynchronous;
  // after a crash cleaned blocks may return to their dirty state.
  Status Clean(Lbn lbn);

  // Test for the presence of dirty blocks in [start, start+count): bit i of
  // `dirty_out` is set iff block start+i is present and dirty. Served from
  // device memory.
  void Exists(Lbn start, uint64_t count, Bitmap* dirty_out);

  // Per-block metadata returned by the extended exists query (Section 4.2.1:
  // exists "could be extended to return additional per-block metadata, such
  // as access time or frequency, to help manage cache contents").
  struct BlockInfo {
    bool present = false;
    bool dirty = false;
    uint32_t access_frequency = 0;  // reads+overwrites since caching
  };

  // Extended exists: presence, dirty state and access frequency for each
  // block in [start, start+count). Served from device memory.
  void ExistsDetail(Lbn start, uint64_t count, std::vector<BlockInfo>* out);

  // Background garbage collection (Section 5 integrates silent eviction
  // "with background and foreground garbage collection"): reclaim space
  // during idle time, spending at most `budget_us` of device time. Returns
  // the number of blocks reclaimed.
  uint32_t BackgroundCollect(uint64_t budget_us);

  // One wear-leveling pass (Section 3.3: the device "may relocate data to
  // perform wear leveling"): if the wear spread exceeds `max_wear_diff`,
  // relocates the data block sitting on the least-worn flash so the worn
  // block re-enters the allocation pool. Returns true if it moved anything.
  bool WearLevelOnce(uint32_t max_wear_diff);

  // One patrol-scrub pass (the flash-tier mirror of the disk tier's
  // ScrubDisk): walks data blocks from a persistent cursor and relocates
  // those whose read-disturb or retention exposure is within 25% of the
  // device's fault thresholds, before the exposure turns into corruption.
  // The relocation is a fresh program (retention clock restarts) followed by
  // an erase of the source (disturb counter resets). Refreshes at most
  // `max_blocks` blocks; returns how many it refreshed. No-op when the fault
  // plan models neither wear effect.
  uint32_t PatrolFlash(uint32_t max_blocks);

  // Streams every (lbn, dirty) cached page to `fn(lbn, dirty)`, charging the
  // same device-memory cost as an exists scan of the spanned address range
  // would. Used by write-back cache-manager recovery.
  template <typename Fn>
  void ForEachCached(Fn&& fn) {
    ChargeExistsScan();
    const uint32_t ppb = device_->geometry().pages_per_block;
    page_map_.ForEach([&](Lbn lbn, uint64_t packed) { fn(lbn, PackedDirty(packed)); });
    block_map_.ForEach([&](uint64_t logical, const BlockEntry& e) {
      for (uint32_t off = 0; off < ppb; ++off) {
        if ((e.present_bits >> off) & 1u) {
          fn(logical * ppb + off, ((e.dirty_bits >> off) & 1u) != 0);
        }
      }
    });
  }

  // ---- Crash simulation / recovery (Section 4.2.2) ----

  // Power failure: device RAM (maps, log buffer, GC state) is lost; the
  // flash medium and the durable log/checkpoint regions survive.
  void SimulateCrash();

  // Roll-forward recovery: checkpoint + log replay, then reconstruction of
  // reverse maps and block state. Leaves the device ready to serve requests.
  // Idempotent: device RAM is reset on entry, so a crash at any RecoveryPoint
  // can simply run Recover() again.
  Status Recover();

  // Drains the log region by forcing a checkpoint, counting one backpressure
  // stall. Cache managers call this when a write returns kBackpressure, then
  // retry (the bounded-stall path); no-op in kNone mode.
  void DrainLog();

  // ---- Introspection ----

  uint64_t capacity_pages() const { return config_.capacity_pages; }
  uint64_t cached_pages() const { return cached_pages_; }
  uint64_t dirty_pages() const { return dirty_pages_; }

  // Graceful capacity degradation: the nominal capacity minus every page of
  // every retired block. Cache managers size their dirty thresholds against
  // this, so an aging device serves a proportionally smaller cache instead of
  // dead-ending in kNoSpace.
  uint64_t usable_capacity_pages() const {
    const uint64_t retired_pages = static_cast<uint64_t>(allocator_->RetiredCount()) *
                                   device_->geometry().pages_per_block;
    return retired_pages >= config_.capacity_pages ? 0 : config_.capacity_pages - retired_pages;
  }
  // Blocks permanently retired (allocator ground truth, survives recovery).
  uint64_t retired_block_count() const { return allocator_->RetiredCount(); }
  // Share of the medium permanently lost to retirement, in percent.
  double retired_capacity_pct() const {
    const uint64_t total = device_->geometry().TotalBlocks();
    return total == 0 ? 0.0
                      : 100.0 * static_cast<double>(allocator_->RetiredCount()) /
                            static_cast<double>(total);
  }

  const FtlStats& ftl_stats() const { return ftl_stats_; }
  const FlashStats& flash_stats() const { return device_->stats(); }
  const PersistStats& persist_stats() const { return persist_->stats(); }
  const FlashDevice& device() const { return *device_; }
  // Mutable medium access for test harnesses (e.g. pausing fault injection
  // while a checker observes the device).
  FlashDevice* device_for_testing() { return device_.get(); }
  uint64_t last_recovery_us() const { return persist_->stats().last_recovery_us; }

  double ExtraWritesPerBlock() const {
    return ftl_stats_.ExtraWritesPerBlock(device_->stats().page_writes,
                                          device_->stats().gc_copies);
  }

  // Device-resident mapping memory actually in use (Table 4 "SSC" column).
  size_t DeviceMemoryUsage() const;
  // SE-Merge must reserve device memory for page-level mappings of the
  // maximum log fraction (Table 4 "SSC-R" column accounting).
  size_t ReservedDeviceMemoryUsage() const;

  uint64_t current_log_blocks() const { return log_blocks_.size(); }
  uint64_t free_blocks() const { return allocator_->FreeCount(); }
  uint64_t dead_block_count() const { return dead_blocks_.size(); }
  uint64_t data_block_entries() const { return block_map_.size(); }
  uint64_t page_map_entries() const { return page_map_.size(); }

  // ---- FlashCheck instrumentation ----

  // Debug audit hook: when set, invoked with the device at a quiescent state
  // at the end of any host operation during which a garbage-collection pass
  // ran or a checkpoint was written. Tests install a hook that runs
  // InvariantChecker::Check and asserts an empty report, so every GC/merge/
  // checkpoint interleaving a workload produces is audited in place.
  using AuditHook = std::function<void(const SscDevice&)>;
  void set_audit_hook(AuditHook hook) { audit_hook_ = std::move(hook); }

  // Invoked with the LBN whenever a *dirty* cached page is lost to a medium
  // error (uncorrectable read, or a merge that could not relocate it). The
  // crash explorer uses this to distinguish accounted data loss from silent
  // corruption; cache managers surface the same event in ManagerStats.
  using DataLossHook = std::function<void(Lbn)>;
  void set_data_loss_hook(DataLossHook hook) { data_loss_hook_ = std::move(hook); }

  // The crash explorer installs its commit-point hook directly on the
  // persistence manager and flips its broken-recovery flag through this.
  PersistenceManager* persist_for_testing() { return persist_.get(); }

  // ---- KV layer plumbing (src/kv, DESIGN.md §5k) ----

  // The KV layer shares this shard's persistence log: its slot records ride
  // the same group-commit/checkpoint machinery, so G1–G3 extend to objects.
  PersistenceManager* persist() { return persist_.get(); }

  // Installed by the KV layer: materializes kv-flagged checkpoint entries so
  // device checkpoints subsume the KV slot directory too (a checkpoint that
  // truncated the log without them would silently forget every slot).
  using KvSnapshotSource = std::function<std::vector<CheckpointEntry>()>;
  void set_kv_snapshot_source(KvSnapshotSource source) {
    kv_snapshot_source_ = std::move(source);
  }

  // KV durable state reconstructed by the most recent Recover(): kv-flagged
  // checkpoint entries followed by the KV log-tail records in commit order.
  // The KV layer takes them once, immediately after the device recovers.
  struct RecoveredKv {
    std::vector<CheckpointEntry> checkpoint;
    std::vector<LogRecord> log;
  };
  RecoveredKv TakeRecoveredKv() { return std::exchange(recovered_kv_, RecoveredKv{}); }

  // Runs the checkpoint policy after a KV mutation, snapshotting the device
  // map plus the installed KV directory — the same call the SSC makes after
  // its own writes, exposed because KV slot records grow the log without
  // passing through WriteInternal.
  void MaybeCheckpointForKv() {
    persist_->MaybeCheckpoint([this] { return SnapshotForCheckpoint(); });
  }

 private:
  friend class InvariantChecker;
  friend class CheckTestPeer;  // injects corruption in invariant-checker tests

  struct BlockEntry {
    PhysBlock phys = kInvalidBlock;
    uint64_t present_bits = 0;
    uint64_t dirty_bits = 0;
    // Volatile usage statistic (Section 4.1); reported by ExistsDetail and
    // not persisted (resets to zero across a crash).
    uint32_t access_count = 0;
  };

  static uint64_t Pack(Ppn ppn, bool dirty) {
    return (ppn << 1) | (dirty ? 1u : 0u);
  }
  static Ppn PackedPpn(uint64_t packed) { return packed >> 1; }
  static bool PackedDirty(uint64_t packed) { return (packed & 1u) != 0; }

  Status WriteInternal(Lbn lbn, uint64_t token, bool dirty);
  // Wipes all device-RAM structures (maps, log FIFO, dead queue, counters);
  // used by SimulateCrash and by Recover re-entry.
  void ResetRamState();
  // Removes the newest version of lbn from maps and medium; returns true if
  // one existed. Appends the matching log records (not flushed).
  bool InvalidateOldVersion(Lbn lbn);

  Status EnsureFreeBlocks(uint32_t want);
  Status EnsureActiveLogBlock();
  // Erases one block from the dead queue (flushing pending log records
  // first) and returns it to the allocator. False if the queue is empty.
  bool ReclaimDeadBlock();
  uint32_t LogBlockLimit() const;

  // Erases `block` and returns it to the free pool; on erase failure the
  // block is retired as bad (never allocated again). Callers must have
  // flushed the mapping removals that made the block reclaimable.
  void EraseOrRetire(PhysBlock block);
  // Stats + data-loss hook for a page lost to a medium error. Does not touch
  // cached/dirty counters — callers adjust those through the path that
  // removed the mapping.
  void NoteLoss(Lbn lbn, bool dirty);
  // Host read hit an uncorrectable page: drop the mapping (the cached copy is
  // gone) and translate to the host-visible outcome — kNotPresent for clean
  // pages (just a miss), kIoError for dirty ones (data loss).
  Status DropCorruptPage(Lbn lbn);

  // One garbage-collection cycle on the fullest plane. Prefers silent
  // eviction of clean data blocks; falls back to copying GC. Returns true if
  // at least one block was reclaimed.
  bool CollectFullestPlane();
  void SilentlyEvict(PhysBlock phys, uint64_t logical);
  // Moves a data block to `destination` (already allocated), preserving
  // offsets; used by wear leveling.
  Status RelocateDataBlock(PhysBlock phys, uint64_t logical, PhysBlock destination);

  Status MergeOldestLogBlock();
  Status MergeLogicalBlock(uint64_t logical);
  // SE-Merge log reclamation: copy live pages to the log frontier (no block
  // rebuild) and erase the victim.
  Status ForwardCopyLogBlock(PhysBlock victim);
  bool TrySwitchOrPartialMerge(PhysBlock victim);
  // Installs `phys` as the data block for `logical` and retires the previous
  // data block, if any.
  void InstallDataBlock(uint64_t logical, PhysBlock phys, uint64_t present_bits,
                        uint64_t dirty_bits);
  void RetireLogPage(Lbn lbn);

  // Write-cadence driver for the endurance defenses: runs a wear-leveling
  // pass and/or a patrol pass when their intervals elapse. Called from the
  // end of WriteInternal (a quiescent point — the host op has committed).
  void MaybeEnduranceMaintenance();

  void ChargeExistsScan();
  std::vector<CheckpointEntry> SnapshotForCheckpoint() const;
  void LogInsertBlockEntry(uint64_t logical, const BlockEntry& e);
  // Runs the audit hook if a GC pass or checkpoint happened since the last
  // audit. Call only from quiescent points (end of a host operation).
  void MaybeAudit();

  SscConfig config_;
  SimClock* clock_;
  std::unique_ptr<FlashDevice> device_;
  std::unique_ptr<BlockAllocator> allocator_;
  std::unique_ptr<PersistenceManager> persist_;

  SparseHashMap<uint64_t, BlockEntry> block_map_;  // logical erase block -> entry
  SparseHashMap<Lbn, uint64_t> page_map_;          // lbn -> packed (ppn, dirty)

  std::deque<PhysBlock> log_blocks_;  // FIFO; back() is the active one
  std::unordered_map<PhysBlock, std::vector<Lbn>> log_contents_;
  std::vector<Lbn> phys_to_logical_;       // data-block reverse map (device RAM)
  // Creation stamp per data block — the "usage statistics to guide ...
  // eviction policies" of Section 4.1. Freshly-merged blocks are sparse by
  // construction; without an age filter, pure min-utilization eviction would
  // preferentially discard the youngest data.
  std::vector<uint64_t> block_birth_;
  uint64_t birth_counter_ = 0;
  std::deque<PhysBlock> dead_blocks_;      // unreferenced, not yet erased

  uint64_t cached_pages_ = 0;
  uint64_t dirty_pages_ = 0;
  FtlStats ftl_stats_;

  // Endurance-maintenance cadence state (device RAM; resets across a crash).
  uint32_t writes_since_wear_level_ = 0;
  uint32_t writes_since_patrol_ = 0;
  PhysBlock patrol_cursor_ = 0;

  AuditHook audit_hook_;
  DataLossHook data_loss_hook_;
  KvSnapshotSource kv_snapshot_source_;
  RecoveredKv recovered_kv_;
  uint64_t last_audited_gc_ = 0;
  uint64_t last_audited_checkpoints_ = 0;
};

}  // namespace flashtier

#endif  // FLASHTIER_SSC_SSC_DEVICE_H_
