// Shard routing for the multi-channel SSC.
//
// Real flash packages expose parallelism per channel/plane that a single
// monolithic FTL cannot: independent dies program, erase and serve reads
// concurrently. We model that by partitioning the unified sparse address
// space into N independent shards — each shard owns its own sparse hash
// maps, block allocator, log region, group-commit state and silent-eviction
// GC (it is simply a complete SscDevice), the way a channel owns its dies.
//
// Routing is a pure function of the LBN so per-LBN request order is trivially
// preserved no matter how many replay threads drive the shards. The grain is
// one 256 KB logical erase block (64 × 4 KB pages): all pages of a logical
// block land on the same shard, so block-level mapping, switch merges and the
// write-back manager's contiguous-clean runs keep working within a shard.
// Hashing the block number (rather than striding it) spreads hot regions
// evenly — synthetic and real traces alike concentrate traffic in a few
// regions, which round-robin striping would pile onto adjacent shards.

#ifndef FLASHTIER_SSC_SHARD_H_
#define FLASHTIER_SSC_SHARD_H_

#include <cstdint>

#include "src/flash/types.h"
#include "src/sparsemap/sparse_hash_map.h"

namespace flashtier {

struct ShardRouter {
  uint32_t shards = 1;
  // Pages per routing grain: one logical erase block, so a block-map entry
  // can never straddle shards.
  uint32_t grain_pages = 64;

  uint32_t ShardOf(Lbn lbn) const {
    if (shards <= 1) {
      return 0;
    }
    return static_cast<uint32_t>(MixHash64(lbn / grain_pages) % shards);
  }

  // Object-key routing for the KV layer (DESIGN.md §5k). Keys are opaque
  // identifiers with no spatial locality to preserve, so they hash at unit
  // grain; like ShardOf, the result is a pure function of the key, so
  // per-key order survives any thread count.
  uint32_t ShardOfKey(uint64_t key) const {
    if (shards <= 1) {
      return 0;
    }
    return static_cast<uint32_t>(MixHash64(key) % shards);
  }
};

}  // namespace flashtier

#endif  // FLASHTIER_SSC_SHARD_H_
