// SSC durability machinery: operation log, group commit, checkpoints
// (Section 4.2.2 of the paper).
//
// The SSC persists its sparse mapping with a combination of:
//   * an operation log: one record per mapping insert/remove (and per clean
//     state change), flushed to a dedicated flash region either synchronously
//     (write-dirty, evict) or by asynchronous group commit (write-clean,
//     clean) every `group_commit_ops` buffered records;
//   * periodic checkpoints of the forward mapping, written to one of two
//     dedicated regions (alternating) whenever the log grows beyond
//     two-thirds of the checkpoint size or after a fixed number of writes;
//   * roll-forward recovery: load the latest checkpoint, then replay log
//     records with LSNs after the checkpoint.
//
// The log and checkpoint regions bypass address translation, so their
// contents are modeled here directly ("durable" staging buffers) while their
// media costs — page programs on flush, page reads on recovery — are charged
// to the shared virtual clock using the device timings. Synchronous commits
// use the atomic-write primitive the paper imports from Beyond Block I/O
// [33], so a flushed batch is all-or-nothing.

#ifndef FLASHTIER_SSC_PERSIST_H_
#define FLASHTIER_SSC_PERSIST_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "src/flash/timing.h"
#include "src/flash/types.h"

namespace flashtier {

class InvariantChecker;

enum class ConsistencyMode : uint8_t {
  kNone,          // no-consistency baseline of Figure 4
  kRelaxedClean,  // FlashTier-D: write-clean inserts buffered; overwrites sync
  kFull,          // FlashTier-C/D: clean and dirty both logged synchronously
};

enum class LogOpType : uint8_t {
  kInsertPage,       // lbn -> ppn page-level mapping added
  kRemovePage,       // page-level mapping removed
  kInsertBlock,      // logical erase block -> physical block mapping added
  kRemoveBlock,      // block-level mapping removed
  kClearBlockPages,  // presence+dirty bits cleared within a block-level entry
  kSetCleanPage,     // page-level dirty flag cleared (buffered; may be lost)
  kSetCleanBlocks,   // block-level dirty bits cleared (buffered; may be lost)
};

struct LogRecord {
  uint64_t lsn = 0;
  LogOpType type = LogOpType::kInsertPage;
  Lbn key = 0;          // lbn (page-level) or logical erase block (block-level)
  Ppn ppn = kInvalidPpn;
  uint64_t present_bits = 0;  // block-level: which in-block offsets are cached
  uint64_t dirty_bits = 0;    // page: 0/1; block: 64-bit dirty bitmap or mask
  uint32_t crc = 0;           // CRC32-C over the fields above; set by Append
};

// One serialized forward-map entry inside a checkpoint.
struct CheckpointEntry {
  bool block_level = false;
  Lbn key = 0;
  Ppn ppn = kInvalidPpn;        // page-level: page; block-level: first ppn of block
  uint64_t present_bits = 0;
  uint64_t dirty_bits = 0;
};

// Durability commit points, in the order FlashCheck's crash explorer visits
// them. A crash injected at k*Start points loses the in-RAM state the step
// was about to persist; a crash at k*Done points happens with it durable.
enum class CommitPoint : uint8_t {
  kAppend,           // a record is about to enter the device-RAM log buffer
  kFlushStart,       // buffered records are about to become durable
  kFlushDone,        // the flushed batch is durable
  kCheckpointStart,  // a checkpoint is about to be written
  kCheckpointDone,   // the checkpoint is durable and the log truncated
  kEraseBarrier,     // an erase block was just reclaimed (silent-eviction
                     // boundary; fired by the SSC, not the manager)
};

constexpr const char* CommitPointName(CommitPoint p) {
  switch (p) {
    case CommitPoint::kAppend:
      return "append";
    case CommitPoint::kFlushStart:
      return "flush-start";
    case CommitPoint::kFlushDone:
      return "flush-done";
    case CommitPoint::kCheckpointStart:
      return "checkpoint-start";
    case CommitPoint::kCheckpointDone:
      return "checkpoint-done";
    case CommitPoint::kEraseBarrier:
      return "erase-barrier";
  }
  return "unknown";
}

struct PersistStats {
  uint64_t records_logged = 0;
  uint64_t sync_commits = 0;
  uint64_t group_commits = 0;
  uint64_t log_page_writes = 0;
  uint64_t checkpoints = 0;
  uint64_t checkpoint_page_writes = 0;
  uint64_t records_lost_in_crash = 0;
  uint64_t last_recovery_us = 0;
  uint64_t recovered_checkpoint_entries = 0;
  uint64_t replayed_log_records = 0;
  // Media-corruption handling during recovery (see DESIGN.md §5d).
  uint64_t corrupt_records_skipped = 0;  // log records failing their CRC
  uint64_t checkpoint_fallbacks = 0;     // recoveries served by the previous checkpoint

  // Accumulates another manager's counters (per-shard aggregation). Recovery
  // time keeps the slowest shard: shards recover in parallel, so the system
  // is back when the last one is.
  void Merge(const PersistStats& o) {
    records_logged += o.records_logged;
    sync_commits += o.sync_commits;
    group_commits += o.group_commits;
    log_page_writes += o.log_page_writes;
    checkpoints += o.checkpoints;
    checkpoint_page_writes += o.checkpoint_page_writes;
    records_lost_in_crash += o.records_lost_in_crash;
    last_recovery_us = last_recovery_us > o.last_recovery_us ? last_recovery_us
                                                             : o.last_recovery_us;
    recovered_checkpoint_entries += o.recovered_checkpoint_entries;
    replayed_log_records += o.replayed_log_records;
    corrupt_records_skipped += o.corrupt_records_skipped;
    checkpoint_fallbacks += o.checkpoint_fallbacks;
  }
};

class PersistenceManager {
 public:
  struct Options {
    ConsistencyMode mode = ConsistencyMode::kFull;
    uint32_t group_commit_ops = 10'000;      // Section 6.4 configuration
    double checkpoint_log_ratio = 2.0 / 3.0; // checkpoint when log > ratio * ckpt
    uint64_t checkpoint_interval_writes = 1'000'000;
    uint32_t page_size = 4096;
  };

  PersistenceManager(const Options& options, const FlashTimings& timings, SimClock* clock);

  ConsistencyMode mode() const { return options_.mode; }
  const PersistStats& stats() const { return stats_; }

  uint64_t NextLsn() { return next_lsn_++; }

  // Appends a record; `sync` forces an immediate atomic flush. In kNone mode
  // records are dropped (nothing is persisted and nothing is charged).
  void Append(const LogRecord& record, bool sync);

  // Flushes all buffered records to the durable log region.
  void Flush();

  // While a batch is open, asynchronous appends never trigger the group-
  // commit flush. Multi-record mapping transitions — a merge's page-map
  // removes plus the block-map insert that supersedes them, an overwrite's
  // remove plus insert — must reach the durable log in one atomic flush or
  // not at all; a group commit firing between the records would make the
  // removes durable alone, and a crash in that window would lose
  // acknowledged data (FlashCheck finds this immediately). Synchronous
  // commits and explicit Flush() calls (the pre-erase barrier) are
  // unaffected. Nestable; a deferred group commit fires on the next
  // asynchronous append after the outermost batch closes.
  void BeginAtomicBatch() noexcept { ++atomic_batch_depth_; }
  void EndAtomicBatch() noexcept { --atomic_batch_depth_; }

  // RAII helper for BeginAtomicBatch/EndAtomicBatch. The destructor only
  // closes the scope and never flushes, so it is safe to unwind through
  // when a FlashCheck crash hook throws mid-batch.
  class AtomicBatchScope {
   public:
    explicit AtomicBatchScope(PersistenceManager* pm) noexcept : pm_(pm) {
      pm_->BeginAtomicBatch();
    }
    ~AtomicBatchScope() { pm_->EndAtomicBatch(); }
    AtomicBatchScope(const AtomicBatchScope&) = delete;
    AtomicBatchScope& operator=(const AtomicBatchScope&) = delete;

   private:
    PersistenceManager* pm_;
  };

  // Called by the SSC after mutating writes; triggers a checkpoint when the
  // log-size or write-count policy says so. `entries` is only materialized
  // when a checkpoint actually happens, via the callback.
  template <typename EntriesFn>
  void MaybeCheckpoint(EntriesFn&& entries_fn) {
    if (options_.mode == ConsistencyMode::kNone) {
      return;
    }
    ++writes_since_checkpoint_;
    const uint64_t log_bytes = (durable_log_.size() + buffer_.size()) * kRecordBytes;
    const uint64_t ckpt_bytes = checkpoint_entry_count_ * kCheckpointEntryBytes;
    const bool log_too_long =
        ckpt_bytes > 0
            ? static_cast<double>(log_bytes) >
                  options_.checkpoint_log_ratio * static_cast<double>(ckpt_bytes)
            : log_bytes > kInitialCheckpointTriggerBytes;
    if (!log_too_long && writes_since_checkpoint_ < options_.checkpoint_interval_writes) {
      return;
    }
    WriteCheckpoint(entries_fn());
  }

  void WriteCheckpoint(std::vector<CheckpointEntry> entries);

  // Power failure: everything buffered in device RAM is lost; durable state
  // is untouched.
  void Crash();

  // Roll-forward recovery: reads the checkpoint and the log tail (charging
  // media reads), then hands back the reconstructed stream. The returned log
  // records all have LSN > checkpoint LSN and are in commit order.
  void Recover(std::vector<CheckpointEntry>* checkpoint, std::vector<LogRecord>* log_tail);

  uint64_t durable_log_records() const { return durable_log_.size(); }
  uint64_t buffered_records() const { return buffer_.size(); }

  size_t MemoryUsage() const { return buffer_.capacity() * sizeof(LogRecord); }

  // ---- FlashCheck instrumentation (test-only) ----

  // Invoked at every durability commit point. The crash explorer installs a
  // hook that throws to simulate power failure at that exact instant; the
  // hook must therefore be exception-transparent to this class (all state a
  // throw abandons is device RAM, which the crash wipes anyway).
  using CommitPointHook = std::function<void(CommitPoint)>;
  void set_commit_point_hook_for_testing(CommitPointHook hook) {
    commit_point_hook_ = std::move(hook);
  }

  // Fired by the SSC after it erases a reclaimed block (the silent-eviction
  // boundary), so the crash explorer sees erase barriers in program order
  // with the log commit points.
  void NotifyEraseBarrier() {
    if (commit_point_hook_) {
      commit_point_hook_(CommitPoint::kEraseBarrier);
    }
  }

  // Deliberately-broken recovery: Recover() returns an empty log tail, as if
  // replay were skipped. Exists so tests can prove the crash explorer
  // actually detects G1/G2 violations rather than vacuously passing.
  void set_skip_log_tail_replay_for_testing(bool skip) { skip_log_tail_replay_ = skip; }

  // Media bit-rot injection: flips payload bits of the `index`-th durable log
  // record without refreshing its CRC, so Recover() must detect and skip it.
  void CorruptDurableRecordForTesting(size_t index);

  // Rots the current checkpoint so its CRC no longer validates; Recover()
  // must fall back to the previous checkpoint plus the retained log history.
  void CorruptCheckpointForTesting();

 private:
  friend class InvariantChecker;
  friend class CheckTestPeer;  // injects corruption in invariant-checker tests

  void AtCommitPoint(CommitPoint p) {
    if (commit_point_hook_) {
      commit_point_hook_(p);
    }
  }

  // On-flash record sizes (packed): lsn + key + ppn + present + dirty + type
  // + CRC32-C.
  static constexpr uint64_t kRecordBytes = 8 + 8 + 8 + 8 + 8 + 1 + 4;
  static constexpr uint64_t kCheckpointEntryBytes = 8 + 8 + 8 + 8 + 1;
  // Before the first checkpoint exists, checkpoint once the log reaches 4 MB.
  static constexpr uint64_t kInitialCheckpointTriggerBytes = 4ull << 20;

  uint64_t PagesFor(uint64_t bytes) const {
    return (bytes + options_.page_size - 1) / options_.page_size;
  }
  void ChargeWrites(uint64_t pages);
  void ChargeReads(uint64_t pages, uint64_t* recovery_us);
  static uint32_t RecordCrc(const LogRecord& record);
  static uint32_t CheckpointCrc(const std::vector<CheckpointEntry>& entries);

  Options options_;
  FlashTimings timings_;
  SimClock* clock_;

  std::vector<LogRecord> buffer_;        // device RAM, lost on crash
  std::vector<LogRecord> durable_log_;   // on flash, since last checkpoint
  std::vector<CheckpointEntry> durable_checkpoint_;
  uint64_t checkpoint_lsn_ = 0;          // highest LSN covered by checkpoint
  uint64_t checkpoint_entry_count_ = 0;
  uint32_t durable_checkpoint_crc_ = 0;
  // The checkpoint regions alternate (Section 4.2.2), so the previous
  // checkpoint survives until the one after next. We keep it — plus the log
  // interval it anchors — as the fallback when the current checkpoint fails
  // its CRC on recovery.
  std::vector<CheckpointEntry> prev_checkpoint_;
  std::vector<LogRecord> prev_log_;      // records between prev and current ckpt
  uint64_t prev_checkpoint_lsn_ = 0;
  uint32_t prev_checkpoint_crc_ = 0;
  uint64_t writes_since_checkpoint_ = 0;
  uint64_t next_lsn_ = 1;
  uint32_t atomic_batch_depth_ = 0;
  PersistStats stats_;
  CommitPointHook commit_point_hook_;
  bool skip_log_tail_replay_ = false;
};

}  // namespace flashtier

#endif  // FLASHTIER_SSC_PERSIST_H_
