// SSC durability machinery: operation log, group commit, checkpoints
// (Section 4.2.2 of the paper).
//
// The SSC persists its sparse mapping with a combination of:
//   * an operation log: one record per mapping insert/remove (and per clean
//     state change), flushed to a dedicated flash region either synchronously
//     (write-dirty, evict) or by asynchronous group commit (write-clean,
//     clean) every `group_commit_ops` buffered records;
//   * periodic checkpoints of the forward mapping, written to one of two
//     dedicated regions (alternating) whenever the log grows beyond
//     two-thirds of the checkpoint size or after a fixed number of writes;
//   * roll-forward recovery: load the latest checkpoint, then replay log
//     records with LSNs after the checkpoint.
//
// The log and checkpoint regions bypass address translation, so their
// contents are modeled here directly ("durable" staging buffers) while their
// media costs — page programs on flush, page reads on recovery — are charged
// to the shared virtual clock using the device timings. Synchronous commits
// use the atomic-write primitive the paper imports from Beyond Block I/O
// [33], so a flushed batch is all-or-nothing.
//
// The log region is finite (`Options::log_region_pages`). Passing the
// high-water mark forces a checkpoint; a flush that would overflow the
// region converts into a forced checkpoint (which subsumes the buffer); and
// when even that margin is gone, host operations are refused with
// backpressure until the log drains (see DESIGN.md §5g).
//
// Checkpoints are written as fixed-size segments, each carrying its own CRC
// and a generation header. A torn or rotted segment costs only that segment:
// recovery falls back to the same-index segment of the previous generation
// (its region is only reused by the checkpoint after next) and replays the
// retained log interval to catch the stale slice up.

#ifndef FLASHTIER_SSC_PERSIST_H_
#define FLASHTIER_SSC_PERSIST_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "src/flash/pipeline.h"
#include "src/flash/timing.h"
#include "src/flash/types.h"

namespace flashtier {

class InvariantChecker;

enum class ConsistencyMode : uint8_t {
  kNone,          // no-consistency baseline of Figure 4
  kRelaxedClean,  // FlashTier-D: write-clean inserts buffered; overwrites sync
  kFull,          // FlashTier-C/D: clean and dirty both logged synchronously
};

enum class LogOpType : uint8_t {
  kInsertPage,       // lbn -> ppn page-level mapping added
  kRemovePage,       // page-level mapping removed
  kInsertBlock,      // logical erase block -> physical block mapping added
  kRemoveBlock,      // block-level mapping removed
  kClearBlockPages,  // presence+dirty bits cleared within a block-level entry
  kSetCleanPage,     // page-level dirty flag cleared (buffered; may be lost)
  kSetCleanBlocks,   // block-level dirty bits cleared (buffered; may be lost)
  // KV layer (src/kv, DESIGN.md §5k): tiny-object slot directory records.
  // They ride the same log/checkpoint machinery; the SSC skips them during
  // its own map rebuild and hands them to the KV layer after recovery.
  kKvInsertSlot,     // key -> (slab lbn, slot, size, dirty, value token)
  kKvDeleteSlot,     // key's slot invalidated (delete, overwrite, eviction)
};

struct LogRecord {
  uint64_t lsn = 0;
  LogOpType type = LogOpType::kInsertPage;
  Lbn key = 0;          // lbn (page-level) or logical erase block (block-level)
  Ppn ppn = kInvalidPpn;
  uint64_t present_bits = 0;  // block-level: which in-block offsets are cached
  uint64_t dirty_bits = 0;    // page: 0/1; block: 64-bit dirty bitmap or mask
  uint32_t crc = 0;           // CRC32-C over the fields above; set by Append
};

// One serialized forward-map entry inside a checkpoint. KV slot entries
// (kv = true) reuse the same wire shape — key is the object key, ppn the
// slab LBN, present_bits the packed slot metadata and dirty_bits the value
// token — and pack their flag into spare bits of the level byte, so the
// serialized entry size is unchanged.
struct CheckpointEntry {
  bool block_level = false;
  bool kv = false;
  Lbn key = 0;
  Ppn ppn = kInvalidPpn;        // page-level: page; block-level: first ppn of block
  uint64_t present_bits = 0;
  uint64_t dirty_bits = 0;
};

// One fixed-size slice of a checkpoint, independently validatable. The
// generation header lets recovery tell a completed checkpoint's segments
// from slices of an interrupted (newer) or superseded (older) write.
struct CheckpointSegment {
  uint64_t generation = 0;
  uint64_t base_lsn = 0;  // highest LSN this segment's entries reflect
  std::vector<CheckpointEntry> entries;
  uint32_t crc = 0;       // CRC32-C over generation, base_lsn and entries
};

// Durability commit points, in the order FlashCheck's crash explorer visits
// them. A crash injected at k*Start points loses the in-RAM state the step
// was about to persist; a crash at k*Done points happens with it durable.
enum class CommitPoint : uint8_t {
  kAppend,             // a record is about to enter the device-RAM log buffer
  kFlushStart,         // buffered records are about to become durable
  kFlushDone,          // the flushed batch is durable
  kCheckpointStart,    // a checkpoint is about to be written
  kCheckpointSegment,  // one checkpoint segment just hit flash (not yet live)
  kCheckpointDone,     // the checkpoint is durable and the log truncated
  kEraseBarrier,       // an erase block was just reclaimed (silent-eviction
                       // boundary; fired by the SSC, not the manager)
};

constexpr const char* CommitPointName(CommitPoint p) {
  switch (p) {
    case CommitPoint::kAppend:
      return "append";
    case CommitPoint::kFlushStart:
      return "flush-start";
    case CommitPoint::kFlushDone:
      return "flush-done";
    case CommitPoint::kCheckpointStart:
      return "checkpoint-start";
    case CommitPoint::kCheckpointSegment:
      return "checkpoint-segment";
    case CommitPoint::kCheckpointDone:
      return "checkpoint-done";
    case CommitPoint::kEraseBarrier:
      return "erase-barrier";
  }
  return "unknown";
}

// Observable phases of recovery, mirroring CommitPoint. A crash injected at
// any of these points must leave a state from which a second recovery
// succeeds: every phase only reads durable state, so re-entry is safe.
enum class RecoveryPoint : uint8_t {
  kStart,             // recovery is about to begin
  kCheckpointLoaded,  // all checkpoint segments validated (or fallen back)
  kLogScanned,        // the log tail has been read and CRC-filtered
  kMapsRebuilt,       // the device rebuilt its forward maps (fired by the SSC)
  kDone,              // recovery complete (fired by the SSC)
};

constexpr const char* RecoveryPointName(RecoveryPoint p) {
  switch (p) {
    case RecoveryPoint::kStart:
      return "recovery-start";
    case RecoveryPoint::kCheckpointLoaded:
      return "checkpoint-loaded";
    case RecoveryPoint::kLogScanned:
      return "log-scanned";
    case RecoveryPoint::kMapsRebuilt:
      return "maps-rebuilt";
    case RecoveryPoint::kDone:
      return "recovery-done";
  }
  return "unknown";
}

struct PersistStats {
  uint64_t records_logged = 0;
  uint64_t sync_commits = 0;
  uint64_t group_commits = 0;
  uint64_t log_page_writes = 0;
  uint64_t checkpoints = 0;
  uint64_t checkpoint_page_writes = 0;
  uint64_t records_lost_in_crash = 0;
  uint64_t last_recovery_us = 0;
  uint64_t recovered_checkpoint_entries = 0;
  uint64_t replayed_log_records = 0;
  // Media-corruption handling during recovery (see DESIGN.md §5d).
  uint64_t corrupt_records_skipped = 0;  // log records failing their CRC
  uint64_t checkpoint_fallbacks = 0;     // recoveries that needed any fallback segment
  uint64_t segment_fallbacks = 0;        // checkpoint segments lost to a torn write
  // Log-region backpressure (finite log region; see DESIGN.md §5g).
  uint64_t forced_checkpoints = 0;   // checkpoints taken to reclaim log space
  uint64_t backpressure_stalls = 0;  // bounded writer stalls spent draining the log
  uint64_t log_full_events = 0;      // full-region refusals and redirected flushes
  // Recovery-time breakdown for the most recent recovery (all overwritten by
  // each Recover; rebuild_us is reported by the device layer).
  uint64_t checkpoint_load_us = 0;
  uint64_t log_replay_us = 0;
  uint64_t rebuild_us = 0;

  // Accumulates another manager's counters (per-shard aggregation). Recovery
  // times keep the slowest shard: shards recover in parallel, so the system
  // is back when the last one is.
  void Merge(const PersistStats& o) {
    records_logged += o.records_logged;
    sync_commits += o.sync_commits;
    group_commits += o.group_commits;
    log_page_writes += o.log_page_writes;
    checkpoints += o.checkpoints;
    checkpoint_page_writes += o.checkpoint_page_writes;
    records_lost_in_crash += o.records_lost_in_crash;
    last_recovery_us = std::max(last_recovery_us, o.last_recovery_us);
    recovered_checkpoint_entries += o.recovered_checkpoint_entries;
    replayed_log_records += o.replayed_log_records;
    corrupt_records_skipped += o.corrupt_records_skipped;
    checkpoint_fallbacks += o.checkpoint_fallbacks;
    segment_fallbacks += o.segment_fallbacks;
    forced_checkpoints += o.forced_checkpoints;
    backpressure_stalls += o.backpressure_stalls;
    log_full_events += o.log_full_events;
    checkpoint_load_us = std::max(checkpoint_load_us, o.checkpoint_load_us);
    log_replay_us = std::max(log_replay_us, o.log_replay_us);
    rebuild_us = std::max(rebuild_us, o.rebuild_us);
  }
};

class PersistenceManager {
 public:
  struct Options {
    ConsistencyMode mode = ConsistencyMode::kFull;
    uint32_t group_commit_ops = 10'000;      // Section 6.4 configuration
    double checkpoint_log_ratio = 2.0 / 3.0; // checkpoint when log > ratio * ckpt
    uint64_t checkpoint_interval_writes = 1'000'000;
    uint32_t page_size = 4096;
    // Size of the dedicated log region in flash pages; 0 = unbounded (the
    // seed behavior). Bounded operation needs a checkpoint source installed
    // so the region can be reclaimed under pressure.
    uint64_t log_region_pages = 0;
    // Fraction of the region at which MaybeCheckpoint force-checkpoints even
    // when the size-ratio and write-interval rules are quiet.
    double log_high_water = 0.75;
    // Checkpoint entries per segment (the torn-write blast radius).
    uint64_t checkpoint_segment_entries = 1024;
  };

  PersistenceManager(const Options& options, const FlashTimings& timings, SimClock* clock);

  ConsistencyMode mode() const { return options_.mode; }
  const PersistStats& stats() const { return stats_; }

  uint64_t NextLsn() { return next_lsn_++; }

  // Appends a record; `sync` forces an immediate atomic flush. In kNone mode
  // records are dropped (nothing is persisted and nothing is charged).
  // Append never refuses a record: internal activity (GC, merges, evicts)
  // must always be loggable. Host-visible admission happens in AdmitHostOp.
  void Append(const LogRecord& record, bool sync);

  // Flushes all buffered records to the durable log region. If the flush
  // would overflow a bounded region, it converts into a forced checkpoint
  // instead (the checkpoint reflects device RAM, which subsumes the buffer).
  void Flush();

  // While a batch is open, asynchronous appends never trigger the group-
  // commit flush. Multi-record mapping transitions — a merge's page-map
  // removes plus the block-map insert that supersedes them, an overwrite's
  // remove plus insert — must reach the durable log in one atomic flush or
  // not at all; a group commit firing between the records would make the
  // removes durable alone, and a crash in that window would lose
  // acknowledged data (FlashCheck finds this immediately). Synchronous
  // commits and explicit Flush() calls (the pre-erase barrier) are
  // unaffected. Nestable; a deferred group commit fires on the next
  // asynchronous append after the outermost batch closes.
  void BeginAtomicBatch() noexcept { ++atomic_batch_depth_; }
  void EndAtomicBatch() noexcept { --atomic_batch_depth_; }

  // RAII helper for BeginAtomicBatch/EndAtomicBatch. The destructor only
  // closes the scope and never flushes, so it is safe to unwind through
  // when a FlashCheck crash hook throws mid-batch.
  class AtomicBatchScope {
   public:
    explicit AtomicBatchScope(PersistenceManager* pm) noexcept : pm_(pm) {
      pm_->BeginAtomicBatch();
    }
    ~AtomicBatchScope() { pm_->EndAtomicBatch(); }
    AtomicBatchScope(const AtomicBatchScope&) = delete;
    AtomicBatchScope& operator=(const AtomicBatchScope&) = delete;

   private:
    PersistenceManager* pm_;
  };

  // Called by the SSC after mutating writes; triggers a checkpoint when the
  // log-size, write-count or log-region high-water policy says so. `entries`
  // is only materialized when a checkpoint actually happens, via the
  // callback.
  template <typename EntriesFn>
  void MaybeCheckpoint(EntriesFn&& entries_fn) {
    if (options_.mode == ConsistencyMode::kNone) {
      return;
    }
    ++writes_since_checkpoint_;
    const uint64_t log_bytes = (durable_log_.size() + buffer_.size()) * kRecordBytes;
    const uint64_t ckpt_bytes = checkpoint_entry_count_ * kCheckpointEntryBytes;
    const bool log_too_long =
        ckpt_bytes > 0
            ? static_cast<double>(log_bytes) >
                  options_.checkpoint_log_ratio * static_cast<double>(ckpt_bytes)
            : log_bytes > kInitialCheckpointTriggerBytes;
    const bool interval_due = writes_since_checkpoint_ >= options_.checkpoint_interval_writes;
    const bool high_water =
        options_.log_region_pages > 0 && PagesFor(log_bytes) >= HighWaterPages();
    if (!log_too_long && !interval_due && !high_water) {
      return;
    }
    if (high_water && !log_too_long && !interval_due) {
      // Only the finite region forced this one; the economy counters track it.
      ++stats_.forced_checkpoints;
    }
    WriteCheckpoint(entries_fn());
  }

  void WriteCheckpoint(std::vector<CheckpointEntry> entries);

  // Installed by the device: materializes a forward-map snapshot so the
  // persistence layer can checkpoint on its own when the log region fills.
  using CheckpointSource = std::function<std::vector<CheckpointEntry>()>;
  void set_checkpoint_source(CheckpointSource source) {
    checkpoint_source_ = std::move(source);
  }

  // Installed by the device: routes log/checkpoint I/O time through the
  // device's event engine (the dedicated log resource) so commits overlap
  // foreground media work. Without a pipeline the manager charges the clock
  // serially — the stand-alone configuration unit tests use.
  void set_pipeline(FlashPipeline* pipeline) { pipeline_ = pipeline; }

  // Checkpoints immediately from the installed source to reclaim log space,
  // counted as forced. No-op in kNone mode or without a source.
  void ForceCheckpoint();

  // A writer chose to stall and drain the log rather than bypass the cache.
  void NoteBackpressureStall() { ++stats_.backpressure_stalls; }

  // Host-op admission for bounded log regions: false when the region cannot
  // absorb another host operation (plus a small margin for the internal
  // records it may trigger) without overflowing. Callers surface the refusal
  // as Status::kBackpressure *before* any state change, so a refused op has
  // no side effects to tear.
  bool AdmitHostOp();

  // Power failure: everything buffered in device RAM is lost; durable state
  // is untouched.
  void Crash();

  // Roll-forward recovery: reads the checkpoint and the log tail (charging
  // media reads), then hands back the reconstructed stream. The returned log
  // records all have LSN > the replay base and are in commit order. Recovery
  // only reads durable state, so it is idempotent: crashing at any
  // RecoveryPoint and re-running yields the same result.
  void Recover(std::vector<CheckpointEntry>* checkpoint, std::vector<LogRecord>* log_tail);

  // Reported by the device after it finishes rebuilding its forward maps, to
  // complete the recovery-time breakdown begun by Recover().
  void RecordRebuildTime(uint64_t us) {
    stats_.rebuild_us = us;
    stats_.last_recovery_us += us;
  }

  uint64_t durable_log_records() const { return durable_log_.size(); }
  uint64_t buffered_records() const { return buffer_.size(); }
  uint64_t DurableLogPages() const { return PagesFor(durable_log_.size() * kRecordBytes); }
  uint64_t log_region_pages() const { return options_.log_region_pages; }

  size_t MemoryUsage() const { return buffer_.capacity() * sizeof(LogRecord); }

  // ---- FlashCheck instrumentation (test-only) ----

  // Invoked at every durability commit point. The crash explorer installs a
  // hook that throws to simulate power failure at that exact instant; the
  // hook must therefore be exception-transparent to this class (all state a
  // throw abandons is device RAM, which the crash wipes anyway).
  using CommitPointHook = std::function<void(CommitPoint)>;
  void set_commit_point_hook_for_testing(CommitPointHook hook) {
    commit_point_hook_ = std::move(hook);
  }

  // Invoked at every recovery phase boundary, mirroring the commit-point
  // hook: the crash explorer throws here to simulate power failing *during*
  // recovery. Also fired by the SSC for the device-side phases.
  using RecoveryPointHook = std::function<void(RecoveryPoint)>;
  void set_recovery_point_hook_for_testing(RecoveryPointHook hook) {
    recovery_point_hook_ = std::move(hook);
  }
  void NotifyRecoveryPoint(RecoveryPoint p) {
    if (recovery_point_hook_) {
      recovery_point_hook_(p);
    }
  }

  // Fired by the SSC after it erases a reclaimed block (the silent-eviction
  // boundary), so the crash explorer sees erase barriers in program order
  // with the log commit points.
  void NotifyEraseBarrier() {
    if (commit_point_hook_) {
      commit_point_hook_(CommitPoint::kEraseBarrier);
    }
  }

  // Deliberately-broken recovery: Recover() returns an empty log tail, as if
  // replay were skipped. Exists so tests can prove the crash explorer
  // actually detects G1/G2 violations rather than vacuously passing.
  void set_skip_log_tail_replay_for_testing(bool skip) { skip_log_tail_replay_ = skip; }

  // Media bit-rot injection: flips payload bits of the `index`-th durable log
  // record without refreshing its CRC, so Recover() must detect and skip it.
  void CorruptDurableRecordForTesting(size_t index);

  // Rots the last `count` durable log records (the tail a torn flush would
  // mangle); Recover() must skip exactly those and keep the rest.
  void CorruptLogTailForTesting(size_t count);

  // Rots one segment of the current checkpoint so its CRC no longer
  // validates; Recover() must fall back to the same-index segment of the
  // previous generation plus the retained log history, losing only that
  // slice. The default keeps the historical single-segment behavior.
  void CorruptCheckpointForTesting(size_t segment = 0);

  // Rots one segment of the *previous* (fallback) checkpoint, so tests can
  // exercise the double-failure path: both generations of a segment bad
  // degrades that slice to empty + full log replay.
  void CorruptPrevCheckpointForTesting(size_t segment = 0);

 private:
  friend class InvariantChecker;
  friend class CheckTestPeer;  // injects corruption in invariant-checker tests

  void AtCommitPoint(CommitPoint p) {
    if (commit_point_hook_) {
      commit_point_hook_(p);
    }
  }

  // On-flash record sizes (packed): lsn + key + ppn + present + dirty + type
  // + CRC32-C.
  static constexpr uint64_t kRecordBytes = 8 + 8 + 8 + 8 + 8 + 1 + 4;
  static constexpr uint64_t kCheckpointEntryBytes = 8 + 8 + 8 + 8 + 1;
  // Per-segment header: generation + base LSN + entry count + CRC32-C.
  static constexpr uint64_t kSegmentHeaderBytes = 8 + 8 + 8 + 4;
  // Before the first checkpoint exists, checkpoint once the log reaches 4 MB.
  static constexpr uint64_t kInitialCheckpointTriggerBytes = 4ull << 20;
  // Headroom AdmitHostOp reserves for the internal records (invalidations,
  // block transitions) one host op can trigger beyond its own log record.
  static constexpr uint64_t kHostOpMarginRecords = 4;

  uint64_t PagesFor(uint64_t bytes) const {
    return (bytes + options_.page_size - 1) / options_.page_size;
  }
  uint64_t HighWaterPages() const {
    const auto hw = static_cast<uint64_t>(
        options_.log_high_water * static_cast<double>(options_.log_region_pages));
    return hw > 0 ? hw : 1;
  }
  static uint64_t SegmentBytes(const CheckpointSegment& seg) {
    return kSegmentHeaderBytes + seg.entries.size() * kCheckpointEntryBytes;
  }
  void ChargeWrites(uint64_t pages);
  void ChargeReads(uint64_t pages, uint64_t* recovery_us);
  void ChargeLogUs(uint64_t us);
  static uint32_t RecordCrc(const LogRecord& record);
  static uint32_t SegmentCrc(const CheckpointSegment& seg);

  Options options_;
  FlashTimings timings_;
  SimClock* clock_;
  FlashPipeline* pipeline_ = nullptr;  // not owned; null in stand-alone use

  std::vector<LogRecord> buffer_;        // device RAM, lost on crash
  std::vector<LogRecord> durable_log_;   // on flash, since last checkpoint
  // The two alternating checkpoint regions (Section 4.2.2), each a list of
  // segments. `current_region_` indexes the live (completed) checkpoint; the
  // other region holds the previous generation until a new checkpoint is
  // staged over it segment by segment. The previous generation — plus the
  // log interval it anchors (`prev_log_`) — is the per-segment fallback when
  // a current segment fails its CRC on recovery.
  std::vector<CheckpointSegment> regions_[2];
  uint32_t current_region_ = 0;
  uint64_t checkpoint_generation_ = 0;
  uint64_t checkpoint_lsn_ = 0;          // highest LSN covered by checkpoint
  uint64_t checkpoint_entry_count_ = 0;
  std::vector<LogRecord> prev_log_;      // records between prev and current ckpt
  uint64_t writes_since_checkpoint_ = 0;
  uint64_t next_lsn_ = 1;
  uint32_t atomic_batch_depth_ = 0;
  PersistStats stats_;
  CheckpointSource checkpoint_source_;
  CommitPointHook commit_point_hook_;
  RecoveryPointHook recovery_point_hook_;
  bool skip_log_tail_replay_ = false;
};

}  // namespace flashtier

#endif  // FLASHTIER_SSC_PERSIST_H_
