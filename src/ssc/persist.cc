#include "src/ssc/persist.h"

namespace flashtier {

PersistenceManager::PersistenceManager(const Options& options, const FlashTimings& timings,
                                       SimClock* clock)
    : options_(options), timings_(timings), clock_(clock) {}

void PersistenceManager::ChargeWrites(uint64_t pages) {
  stats_.log_page_writes += pages;
  clock_->Advance(pages * timings_.WriteCostUs());
}

void PersistenceManager::ChargeReads(uint64_t pages, uint64_t* recovery_us) {
  const uint64_t us = pages * timings_.ReadCostUs();
  clock_->Advance(us);
  *recovery_us += us;
}

void PersistenceManager::Append(const LogRecord& record, bool sync) {
  if (options_.mode == ConsistencyMode::kNone) {
    return;
  }
  // A crash here loses the record entirely: the caller has not been
  // acknowledged yet, so no consistency guarantee attaches to it.
  AtCommitPoint(CommitPoint::kAppend);
  buffer_.push_back(record);
  ++stats_.records_logged;
  if (sync) {
    ++stats_.sync_commits;
    Flush();
  } else if (atomic_batch_depth_ == 0 && buffer_.size() >= options_.group_commit_ops) {
    ++stats_.group_commits;
    Flush();
  }
}

void PersistenceManager::Flush() {
  if (buffer_.empty()) {
    return;
  }
  // A crash here loses the whole buffered batch; one an instant later (after
  // the atomic write) keeps all of it. There is no in-between (primitive [33]).
  AtCommitPoint(CommitPoint::kFlushStart);
  // The whole batch becomes durable atomically (atomic-write primitive [33]).
  // Small synchronous batches use a sub-page atomic write; large group
  // commits stream whole pages.
  const uint64_t bytes = buffer_.size() * kRecordBytes;
  if (bytes <= options_.page_size) {
    ++stats_.log_page_writes;
    clock_->Advance(timings_.atomic_write_us);
  } else {
    ChargeWrites(PagesFor(bytes));
  }
  durable_log_.insert(durable_log_.end(), buffer_.begin(), buffer_.end());
  buffer_.clear();
  AtCommitPoint(CommitPoint::kFlushDone);
}

void PersistenceManager::WriteCheckpoint(std::vector<CheckpointEntry> entries) {
  AtCommitPoint(CommitPoint::kCheckpointStart);
  // Entries reflect device RAM, which is ahead of (or equal to) everything in
  // the buffer, so buffered records are subsumed by the checkpoint.
  checkpoint_lsn_ = next_lsn_ - 1;
  checkpoint_entry_count_ = entries.size();
  durable_checkpoint_ = std::move(entries);
  ChargeWrites(PagesFor(checkpoint_entry_count_ * kCheckpointEntryBytes));
  durable_log_.clear();
  buffer_.clear();
  writes_since_checkpoint_ = 0;
  ++stats_.checkpoints;
  stats_.checkpoint_page_writes += PagesFor(checkpoint_entry_count_ * kCheckpointEntryBytes);
  AtCommitPoint(CommitPoint::kCheckpointDone);
}

void PersistenceManager::Crash() {
  stats_.records_lost_in_crash += buffer_.size();
  buffer_.clear();
}

void PersistenceManager::Recover(std::vector<CheckpointEntry>* checkpoint,
                                 std::vector<LogRecord>* log_tail) {
  uint64_t recovery_us = 0;
  ChargeReads(PagesFor(durable_checkpoint_.size() * kCheckpointEntryBytes), &recovery_us);
  ChargeReads(PagesFor(durable_log_.size() * kRecordBytes), &recovery_us);
  *checkpoint = durable_checkpoint_;
  log_tail->clear();
  if (!skip_log_tail_replay_) {
    for (const LogRecord& r : durable_log_) {
      if (r.lsn > checkpoint_lsn_) {
        log_tail->push_back(r);
      }
    }
  }
  stats_.last_recovery_us = recovery_us;
  stats_.recovered_checkpoint_entries = durable_checkpoint_.size();
  stats_.replayed_log_records = log_tail->size();
}

}  // namespace flashtier
