#include "src/ssc/persist.h"

#include "src/util/crc32.h"

namespace flashtier {

PersistenceManager::PersistenceManager(const Options& options, const FlashTimings& timings,
                                       SimClock* clock)
    : options_(options), timings_(timings), clock_(clock) {}

uint32_t PersistenceManager::RecordCrc(const LogRecord& record) {
  const uint64_t fields[] = {record.lsn,
                             static_cast<uint64_t>(record.type),
                             record.key,
                             record.ppn,
                             record.present_bits,
                             record.dirty_bits};
  return Crc32c(fields, sizeof(fields));
}

uint32_t PersistenceManager::SegmentCrc(const CheckpointSegment& seg) {
  const uint64_t header[] = {seg.generation, seg.base_lsn,
                             static_cast<uint64_t>(seg.entries.size())};
  uint32_t crc = Crc32c(header, sizeof(header));
  for (const CheckpointEntry& e : seg.entries) {
    const uint64_t fields[] = {static_cast<uint64_t>(e.block_level), e.key, e.ppn,
                               e.present_bits, e.dirty_bits};
    crc = Crc32c(crc, fields, sizeof(fields));
  }
  return crc;
}

void PersistenceManager::ChargeWrites(uint64_t pages) {
  stats_.log_page_writes += pages;
  ChargeLogUs(pages * timings_.WriteCostUs());
}

void PersistenceManager::ChargeReads(uint64_t pages, uint64_t* recovery_us) {
  const uint64_t us = pages * timings_.ReadCostUs();
  ChargeLogUs(us);
  *recovery_us += us;
}

void PersistenceManager::ChargeLogUs(uint64_t us) {
  if (pipeline_ != nullptr) {
    pipeline_->ExecuteLog(us);
    return;
  }
  // Stand-alone persistence (unit tests) has no device pipeline; the charge
  // stays serial on the chain.
  // flashlint: allow(clock-advance): no pipeline attached
  clock_->Advance(us);
}

void PersistenceManager::Append(const LogRecord& record, bool sync) {
  if (options_.mode == ConsistencyMode::kNone) {
    return;
  }
  // A crash here loses the record entirely: the caller has not been
  // acknowledged yet, so no consistency guarantee attaches to it.
  AtCommitPoint(CommitPoint::kAppend);
  buffer_.push_back(record);
  buffer_.back().crc = RecordCrc(record);
  ++stats_.records_logged;
  if (sync) {
    ++stats_.sync_commits;
    Flush();
  } else if (atomic_batch_depth_ == 0 && buffer_.size() >= options_.group_commit_ops) {
    ++stats_.group_commits;
    Flush();
  }
}

void PersistenceManager::Flush() {
  if (buffer_.empty()) {
    return;
  }
  if (options_.log_region_pages > 0 && checkpoint_source_ &&
      PagesFor((durable_log_.size() + buffer_.size()) * kRecordBytes) >
          options_.log_region_pages) {
    // The flush would overflow the finite log region. Checkpoint instead:
    // the snapshot reflects device RAM, which is ahead of everything in the
    // buffer, so the buffered records become durable through the checkpoint
    // and the durable log never outgrows its region.
    ++stats_.log_full_events;
    ++stats_.forced_checkpoints;
    WriteCheckpoint(checkpoint_source_());
    return;
  }
  // A crash here loses the whole buffered batch; one an instant later (after
  // the atomic write) keeps all of it. There is no in-between (primitive [33]).
  AtCommitPoint(CommitPoint::kFlushStart);
  // The whole batch becomes durable atomically (atomic-write primitive [33]).
  // Small synchronous batches use a sub-page atomic write; large group
  // commits stream whole pages.
  const uint64_t bytes = buffer_.size() * kRecordBytes;
  if (bytes <= options_.page_size) {
    ++stats_.log_page_writes;
    ChargeLogUs(timings_.atomic_write_us);
  } else {
    ChargeWrites(PagesFor(bytes));
  }
  durable_log_.insert(durable_log_.end(), buffer_.begin(), buffer_.end());
  buffer_.clear();
  AtCommitPoint(CommitPoint::kFlushDone);
}

void PersistenceManager::ForceCheckpoint() {
  if (options_.mode == ConsistencyMode::kNone || !checkpoint_source_) {
    return;
  }
  ++stats_.forced_checkpoints;
  WriteCheckpoint(checkpoint_source_());
}

bool PersistenceManager::AdmitHostOp() {
  if (options_.mode == ConsistencyMode::kNone || options_.log_region_pages == 0) {
    return true;
  }
  const uint64_t projected =
      (durable_log_.size() + buffer_.size() + kHostOpMarginRecords) * kRecordBytes;
  if (PagesFor(projected) <= options_.log_region_pages) {
    return true;
  }
  ++stats_.log_full_events;
  return false;
}

void PersistenceManager::WriteCheckpoint(std::vector<CheckpointEntry> entries) {
  AtCommitPoint(CommitPoint::kCheckpointStart);
  const uint64_t generation = checkpoint_generation_ + 1;
  const uint64_t lsn = next_lsn_ - 1;
  const uint64_t per =
      options_.checkpoint_segment_entries > 0 ? options_.checkpoint_segment_entries : 1;
  const uint64_t total = entries.size();
  // An empty map still writes one (empty) segment so the region always has a
  // validatable header.
  const uint64_t seg_count = total == 0 ? 1 : (total + per - 1) / per;
  // Stage the new generation over the older region, segment by segment. Each
  // staged segment physically overwrites the previous-previous generation's
  // slice; a crash mid-staging leaves the *current* region untouched and the
  // partial new-generation slices are rejected by the generation check.
  std::vector<CheckpointSegment>& staging = regions_[1 - current_region_];
  for (uint64_t i = 0; i < seg_count; ++i) {
    CheckpointSegment seg;
    seg.generation = generation;
    seg.base_lsn = lsn;
    const uint64_t lo = i * per;
    const uint64_t hi = std::min<uint64_t>(total, lo + per);
    seg.entries.assign(entries.begin() + static_cast<std::ptrdiff_t>(lo),
                       entries.begin() + static_cast<std::ptrdiff_t>(hi));
    seg.crc = SegmentCrc(seg);
    const uint64_t pages = PagesFor(SegmentBytes(seg));
    ChargeWrites(pages);
    stats_.checkpoint_page_writes += pages;
    if (i < staging.size()) {
      staging[i] = std::move(seg);
    } else {
      staging.push_back(std::move(seg));
    }
    AtCommitPoint(CommitPoint::kCheckpointSegment);
  }
  // Completion flip: one atomic superblock write publishes the region header
  // (generation + segment count) and truncates the log. Everything before
  // this instant is invisible to recovery. The outgoing checkpoint stays on
  // flash until the checkpoint after next; retain the log interval it
  // anchors (including records the new checkpoint subsumes straight from the
  // buffer) as the per-segment fallback history.
  staging.resize(seg_count);
  prev_log_ = std::move(durable_log_);
  prev_log_.insert(prev_log_.end(), buffer_.begin(), buffer_.end());
  durable_log_.clear();
  buffer_.clear();
  current_region_ = 1 - current_region_;
  checkpoint_generation_ = generation;
  checkpoint_lsn_ = lsn;
  checkpoint_entry_count_ = total;
  writes_since_checkpoint_ = 0;
  ++stats_.checkpoints;
  AtCommitPoint(CommitPoint::kCheckpointDone);
}

void PersistenceManager::Crash() {
  stats_.records_lost_in_crash += buffer_.size();
  buffer_.clear();
}

void PersistenceManager::Recover(std::vector<CheckpointEntry>* checkpoint,
                                 std::vector<LogRecord>* log_tail) {
  NotifyRecoveryPoint(RecoveryPoint::kStart);

  // Phase 1 — checkpoint load. Validate every segment of the current region;
  // a segment failing its CRC or generation check falls back to the
  // same-index segment of the previous generation (valid only if strictly
  // older — a *newer* generation there is a torn slice of an interrupted
  // checkpoint). A double failure degrades that slice to empty and replays
  // every retained record. Mixed-generation bases converge because the log
  // suffix from the oldest base is replayed in full: insert/remove records
  // carry absolute state and clear-mask records are idempotent.
  uint64_t load_us = 0;
  const std::vector<CheckpointSegment>& cur = regions_[current_region_];
  const std::vector<CheckpointSegment>& fallback = regions_[1 - current_region_];
  checkpoint->clear();
  uint64_t replay_from = checkpoint_lsn_;
  bool used_fallback = false;
  for (size_t i = 0; i < cur.size(); ++i) {
    ChargeReads(PagesFor(SegmentBytes(cur[i])), &load_us);
    if (SegmentCrc(cur[i]) == cur[i].crc && cur[i].generation == checkpoint_generation_) {
      checkpoint->insert(checkpoint->end(), cur[i].entries.begin(), cur[i].entries.end());
      continue;
    }
    ++stats_.segment_fallbacks;
    used_fallback = true;
    bool recovered = false;
    if (i < fallback.size()) {
      ChargeReads(PagesFor(SegmentBytes(fallback[i])), &load_us);
      if (SegmentCrc(fallback[i]) == fallback[i].crc &&
          fallback[i].generation < checkpoint_generation_) {
        checkpoint->insert(checkpoint->end(), fallback[i].entries.begin(),
                           fallback[i].entries.end());
        replay_from = std::min(replay_from, fallback[i].base_lsn);
        recovered = true;
      }
    }
    if (!recovered) {
      replay_from = 0;  // slice irrecoverable: replay all retained history
    }
  }
  if (used_fallback) {
    ++stats_.checkpoint_fallbacks;
  }
  stats_.checkpoint_load_us = load_us;
  NotifyRecoveryPoint(RecoveryPoint::kCheckpointLoaded);

  // Phase 2 — log scan: read the tail (and, when any segment fell back, the
  // previous log interval), dropping records the base already covers and
  // records whose CRC fails.
  uint64_t replay_us = 0;
  if (used_fallback) {
    ChargeReads(PagesFor(prev_log_.size() * kRecordBytes), &replay_us);
  }
  ChargeReads(PagesFor(durable_log_.size() * kRecordBytes), &replay_us);
  log_tail->clear();
  if (!skip_log_tail_replay_) {
    const auto consider = [&](const LogRecord& r) {
      if (r.lsn <= replay_from) {
        return;
      }
      if (RecordCrc(r) != r.crc) {
        // Bit-rot in the log region: the record cannot be trusted, so it is
        // dropped from replay rather than poisoning the rebuilt map.
        ++stats_.corrupt_records_skipped;
        return;
      }
      log_tail->push_back(r);
    };
    if (used_fallback) {
      for (const LogRecord& r : prev_log_) {
        consider(r);
      }
    }
    for (const LogRecord& r : durable_log_) {
      consider(r);
    }
  }
  stats_.log_replay_us = replay_us;
  NotifyRecoveryPoint(RecoveryPoint::kLogScanned);

  // Phase 3 — map rebuild — happens in the device layer, which reports its
  // time via RecordRebuildTime and fires kMapsRebuilt/kDone.
  stats_.rebuild_us = 0;
  stats_.last_recovery_us = load_us + replay_us;
  stats_.recovered_checkpoint_entries = checkpoint->size();
  stats_.replayed_log_records = log_tail->size();
}

void PersistenceManager::CorruptDurableRecordForTesting(size_t index) {
  if (index < durable_log_.size()) {
    durable_log_[index].ppn ^= 0xDEADBEEFull;  // payload rot; CRC left stale
  }
}

void PersistenceManager::CorruptLogTailForTesting(size_t count) {
  const size_t n = durable_log_.size();
  for (size_t i = n > count ? n - count : 0; i < n; ++i) {
    durable_log_[i].ppn ^= 0xDEADBEEFull;
  }
}

void PersistenceManager::CorruptCheckpointForTesting(size_t segment) {
  std::vector<CheckpointSegment>& cur = regions_[current_region_];
  if (segment < cur.size()) {
    cur[segment].crc ^= 0x5A5A5A5Au;
  }
}

void PersistenceManager::CorruptPrevCheckpointForTesting(size_t segment) {
  std::vector<CheckpointSegment>& prev = regions_[1 - current_region_];
  if (segment < prev.size()) {
    prev[segment].crc ^= 0x5A5A5A5Au;
  }
}

}  // namespace flashtier
