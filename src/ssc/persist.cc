#include "src/ssc/persist.h"

#include "src/util/crc32.h"

namespace flashtier {

PersistenceManager::PersistenceManager(const Options& options, const FlashTimings& timings,
                                       SimClock* clock)
    : options_(options), timings_(timings), clock_(clock) {}

uint32_t PersistenceManager::RecordCrc(const LogRecord& record) {
  const uint64_t fields[] = {record.lsn,
                             static_cast<uint64_t>(record.type),
                             record.key,
                             record.ppn,
                             record.present_bits,
                             record.dirty_bits};
  return Crc32c(fields, sizeof(fields));
}

uint32_t PersistenceManager::CheckpointCrc(const std::vector<CheckpointEntry>& entries) {
  uint32_t crc = 0;
  for (const CheckpointEntry& e : entries) {
    const uint64_t fields[] = {static_cast<uint64_t>(e.block_level), e.key, e.ppn,
                               e.present_bits, e.dirty_bits};
    crc = Crc32c(crc, fields, sizeof(fields));
  }
  return crc;
}

void PersistenceManager::ChargeWrites(uint64_t pages) {
  stats_.log_page_writes += pages;
  clock_->Advance(pages * timings_.WriteCostUs());
}

void PersistenceManager::ChargeReads(uint64_t pages, uint64_t* recovery_us) {
  const uint64_t us = pages * timings_.ReadCostUs();
  clock_->Advance(us);
  *recovery_us += us;
}

void PersistenceManager::Append(const LogRecord& record, bool sync) {
  if (options_.mode == ConsistencyMode::kNone) {
    return;
  }
  // A crash here loses the record entirely: the caller has not been
  // acknowledged yet, so no consistency guarantee attaches to it.
  AtCommitPoint(CommitPoint::kAppend);
  buffer_.push_back(record);
  buffer_.back().crc = RecordCrc(record);
  ++stats_.records_logged;
  if (sync) {
    ++stats_.sync_commits;
    Flush();
  } else if (atomic_batch_depth_ == 0 && buffer_.size() >= options_.group_commit_ops) {
    ++stats_.group_commits;
    Flush();
  }
}

void PersistenceManager::Flush() {
  if (buffer_.empty()) {
    return;
  }
  // A crash here loses the whole buffered batch; one an instant later (after
  // the atomic write) keeps all of it. There is no in-between (primitive [33]).
  AtCommitPoint(CommitPoint::kFlushStart);
  // The whole batch becomes durable atomically (atomic-write primitive [33]).
  // Small synchronous batches use a sub-page atomic write; large group
  // commits stream whole pages.
  const uint64_t bytes = buffer_.size() * kRecordBytes;
  if (bytes <= options_.page_size) {
    ++stats_.log_page_writes;
    clock_->Advance(timings_.atomic_write_us);
  } else {
    ChargeWrites(PagesFor(bytes));
  }
  durable_log_.insert(durable_log_.end(), buffer_.begin(), buffer_.end());
  buffer_.clear();
  AtCommitPoint(CommitPoint::kFlushDone);
}

void PersistenceManager::WriteCheckpoint(std::vector<CheckpointEntry> entries) {
  AtCommitPoint(CommitPoint::kCheckpointStart);
  // The regions alternate, so the outgoing checkpoint stays on flash until
  // the *next* checkpoint overwrites its region. Retain it, together with the
  // log interval it anchors (including records the new checkpoint subsumes
  // straight from the buffer), as the fallback image for recovery.
  prev_checkpoint_ = std::move(durable_checkpoint_);
  prev_checkpoint_crc_ = durable_checkpoint_crc_;
  prev_checkpoint_lsn_ = checkpoint_lsn_;
  prev_log_ = std::move(durable_log_);
  prev_log_.insert(prev_log_.end(), buffer_.begin(), buffer_.end());
  // Entries reflect device RAM, which is ahead of (or equal to) everything in
  // the buffer, so buffered records are subsumed by the checkpoint.
  checkpoint_lsn_ = next_lsn_ - 1;
  checkpoint_entry_count_ = entries.size();
  durable_checkpoint_ = std::move(entries);
  durable_checkpoint_crc_ = CheckpointCrc(durable_checkpoint_);
  ChargeWrites(PagesFor(checkpoint_entry_count_ * kCheckpointEntryBytes));
  durable_log_.clear();
  buffer_.clear();
  writes_since_checkpoint_ = 0;
  ++stats_.checkpoints;
  stats_.checkpoint_page_writes += PagesFor(checkpoint_entry_count_ * kCheckpointEntryBytes);
  AtCommitPoint(CommitPoint::kCheckpointDone);
}

void PersistenceManager::Crash() {
  stats_.records_lost_in_crash += buffer_.size();
  buffer_.clear();
}

void PersistenceManager::Recover(std::vector<CheckpointEntry>* checkpoint,
                                 std::vector<LogRecord>* log_tail) {
  uint64_t recovery_us = 0;
  ChargeReads(PagesFor(durable_checkpoint_.size() * kCheckpointEntryBytes), &recovery_us);
  ChargeReads(PagesFor(durable_log_.size() * kRecordBytes), &recovery_us);

  // Validate the current checkpoint; a failed CRC falls back to the previous
  // one (its region is only reused by the checkpoint after next) plus the log
  // interval between the two. A double failure degrades to an empty map and
  // replays every retained record — the cache loses clean entries but never
  // serves stale data.
  const std::vector<CheckpointEntry>* base = &durable_checkpoint_;
  uint64_t base_lsn = checkpoint_lsn_;
  bool replay_prev_interval = false;
  if (CheckpointCrc(durable_checkpoint_) != durable_checkpoint_crc_) {
    ++stats_.checkpoint_fallbacks;
    replay_prev_interval = true;
    ChargeReads(PagesFor(prev_checkpoint_.size() * kCheckpointEntryBytes), &recovery_us);
    ChargeReads(PagesFor(prev_log_.size() * kRecordBytes), &recovery_us);
    if (CheckpointCrc(prev_checkpoint_) == prev_checkpoint_crc_) {
      base = &prev_checkpoint_;
      base_lsn = prev_checkpoint_lsn_;
    } else {
      static const std::vector<CheckpointEntry> kEmpty;
      base = &kEmpty;
      base_lsn = 0;
    }
  }

  *checkpoint = *base;
  log_tail->clear();
  if (!skip_log_tail_replay_) {
    const auto consider = [&](const LogRecord& r) {
      if (r.lsn <= base_lsn) {
        return;
      }
      if (RecordCrc(r) != r.crc) {
        // Bit-rot in the log region: the record cannot be trusted, so it is
        // dropped from replay rather than poisoning the rebuilt map.
        ++stats_.corrupt_records_skipped;
        return;
      }
      log_tail->push_back(r);
    };
    if (replay_prev_interval) {
      for (const LogRecord& r : prev_log_) {
        consider(r);
      }
    }
    for (const LogRecord& r : durable_log_) {
      consider(r);
    }
  }
  stats_.last_recovery_us = recovery_us;
  stats_.recovered_checkpoint_entries = base->size();
  stats_.replayed_log_records = log_tail->size();
}

void PersistenceManager::CorruptDurableRecordForTesting(size_t index) {
  if (index < durable_log_.size()) {
    durable_log_[index].ppn ^= 0xDEADBEEFull;  // payload rot; CRC left stale
  }
}

void PersistenceManager::CorruptCheckpointForTesting() {
  durable_checkpoint_crc_ ^= 0x5A5A5A5Au;
}

}  // namespace flashtier
