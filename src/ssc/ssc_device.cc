#include "src/ssc/ssc_device.h"

#include <algorithm>
#include <cassert>

namespace flashtier {

namespace {
// Spare erase blocks beyond nominal capacity: merge transients need a free
// destination block while both source and destination exist. This is not
// over-provisioned *capacity* (the SSC exposes none, Section 3.3) — it is the
// small internal slack any FTL needs to make forward progress.
constexpr uint32_t kSpareBlocks = 8;
constexpr uint32_t kMinFreeBlocks = 2;
}  // namespace

SscDevice::SscDevice(const SscConfig& config, SimClock* clock)
    : config_(config), clock_(clock) {
  const FlashGeometry& probe = config.geometry;
  const uint64_t capacity_blocks =
      (config.capacity_pages + probe.pages_per_block - 1) / probe.pages_per_block;
  FlashGeometry geometry = FlashGeometry::ForCapacity(
      (capacity_blocks + kSpareBlocks) * probe.EraseBlockBytes(), probe);
  device_ = std::make_unique<FlashDevice>(geometry, config.timings, clock,
                                          /*store_data=*/false, config.fault_plan);
  allocator_ = std::make_unique<BlockAllocator>(*device_, /*reserved_blocks=*/0);
  PersistenceManager::Options popts;
  popts.mode = config.mode;
  popts.group_commit_ops = config.group_commit_ops;
  popts.checkpoint_interval_writes = config.checkpoint_interval_writes;
  popts.page_size = geometry.page_size;
  popts.log_region_pages = config.log_region_pages;
  popts.checkpoint_segment_entries = config.checkpoint_segment_entries;
  persist_ = std::make_unique<PersistenceManager>(popts, config.timings, clock);
  // Log commits and checkpoint I/O go through the device's event engine so
  // they overlap foreground media work on other planes.
  persist_->set_pipeline(device_->pipeline());
  // Bounded log regions need a way to reclaim space on their own: install
  // the snapshot source so the persistence layer can force a checkpoint when
  // a flush would overflow the region.
  persist_->set_checkpoint_source([this] { return SnapshotForCheckpoint(); });
  phys_to_logical_.assign(geometry.TotalBlocks(), kInvalidLbn);
  block_birth_.assign(geometry.TotalBlocks(), 0);
}

uint32_t SscDevice::LogBlockLimit() const {
  const uint32_t ppb = device_->geometry().pages_per_block;
  // Sized against the *usable* capacity: as retirement shrinks the medium,
  // the log reserve tightens proportionally instead of squeezing data blocks
  // until EnsureFreeBlocks dead-ends.
  const uint64_t capacity_blocks = (usable_capacity_pages() + ppb - 1) / ppb;
  const double fraction = config_.policy == EvictionPolicy::kSeUtil
                              ? config_.log_fraction
                              : config_.max_log_fraction;
  return std::max<uint32_t>(
      2, static_cast<uint32_t>(static_cast<double>(capacity_blocks) * fraction));
}

// ---------------------------------------------------------------------------
// Host interface
// ---------------------------------------------------------------------------

Status SscDevice::Read(Lbn lbn, uint64_t* token) {
  ++ftl_stats_.host_reads;
  if (const uint64_t* packed = page_map_.Find(lbn); packed != nullptr) {
    const Status s = device_->ReadPage(PackedPpn(*packed), token, nullptr, nullptr);
    return s == Status::kCorrupt ? DropCorruptPage(lbn) : s;
  }
  const uint32_t ppb = device_->geometry().pages_per_block;
  if (BlockEntry* e = block_map_.Find(lbn / ppb); e != nullptr) {
    const uint32_t off = static_cast<uint32_t>(lbn % ppb);
    if ((e->present_bits >> off) & 1u) {
      ++e->access_count;
      const Status s = device_->ReadPage(device_->geometry().FirstPpnOf(e->phys) + off, token,
                                         nullptr, nullptr);
      return s == Status::kCorrupt ? DropCorruptPage(lbn) : s;
    }
  }
  ++ftl_stats_.host_read_misses;
  // In-memory lookup + reply: pure controller work on the block's channel.
  device_->pipeline()->ExecuteControl(config_.timings.control_us, lbn);
  return Status::kNotPresent;
}

void SscDevice::NoteLoss(Lbn lbn, bool dirty) {
  if (dirty) {
    ++ftl_stats_.lost_dirty_pages;
    if (data_loss_hook_) {
      data_loss_hook_(lbn);
    }
  } else {
    ++ftl_stats_.dropped_clean_pages;
  }
}

Status SscDevice::DropCorruptPage(Lbn lbn) {
  bool dirty = false;
  if (const uint64_t* packed = page_map_.Find(lbn); packed != nullptr) {
    dirty = PackedDirty(*packed);
  } else if (const BlockEntry* e = block_map_.Find(lbn / device_->geometry().pages_per_block);
             e != nullptr) {
    dirty = ((e->dirty_bits >> (lbn % device_->geometry().pages_per_block)) & 1u) != 0;
  }
  // Dropping the mapping keeps G2: the page reads not-present from now on,
  // never stale. The removal is buffered like a silent eviction; if a crash
  // loses it, the recovered mapping points back at the sticky-corrupt page
  // and the next read drops it again.
  //
  // The loss must be reported BEFORE the remove record is appended: the
  // append can flush or checkpoint, making the removal durable at a crash
  // commit point, and a loss the host never heard about reads as a broken G1.
  NoteLoss(lbn, dirty);
  InvalidateOldVersion(lbn);
  if (dirty) {
    return Status::kIoError;
  }
  ++ftl_stats_.host_read_misses;  // to the host this is an ordinary miss
  return Status::kNotPresent;
}

Status SscDevice::WriteDirty(Lbn lbn, uint64_t token) {
  return WriteInternal(lbn, token, /*dirty=*/true);
}

Status SscDevice::WriteClean(Lbn lbn, uint64_t token) {
  return WriteInternal(lbn, token, /*dirty=*/false);
}

Status SscDevice::WriteInternal(Lbn lbn, uint64_t token, bool dirty) {
  // Backpressure gate: refuse the op *before* any side effects when the log
  // region cannot absorb the records it would generate. Internal activity
  // (GC, merges, evicts) is never gated — it is what drains the region.
  if (!persist_->AdmitHostOp()) {
    return Status::kBackpressure;
  }
  ++ftl_stats_.host_writes;
  if (Status s = EnsureFreeBlocks(kMinFreeBlocks); !IsOk(s)) {
    return s;
  }
  if (Status s = EnsureActiveLogBlock(); !IsOk(s)) {
    return s;
  }

  // Program first, so a write the medium rejects fails with no mapping or
  // log-record side effects: the cache still holds exactly what it held
  // before (failure atomicity). A program failure poisons the whole block,
  // so each retry moves to a freshly opened log block; the aborted block
  // stays in the log FIFO (its earlier pages are still live) until a merge
  // reclaims it.
  OobRecord oob;
  oob.lbn = lbn;
  oob.flags = dirty ? 1 : 0;
  Ppn ppn = kInvalidPpn;
  PhysBlock active = log_blocks_.back();
  Status ps = device_->ProgramPage(active, oob, token, nullptr, &ppn);
  for (uint32_t retry = 0; ps == Status::kIoError && retry < config_.program_retry_limit;
       ++retry) {
    ++ftl_stats_.program_retries;
    if (Status s = EnsureActiveLogBlock(); !IsOk(s)) {
      return s;
    }
    active = log_blocks_.back();
    ps = device_->ProgramPage(active, oob, token, nullptr, &ppn);
  }
  if (!IsOk(ps)) {
    return ps;
  }

  // An overwrite's remove and insert records must commit together: if a
  // group commit made the remove durable alone, a crash before the insert's
  // flush would recover with neither version of acknowledged data.
  PersistenceManager::AtomicBatchScope batch(persist_.get());
  const bool had_old = InvalidateOldVersion(lbn);
  page_map_.Insert(lbn, Pack(ppn, dirty));
  log_contents_[active].push_back(lbn);
  ++cached_pages_;  // InvalidateOldVersion decremented it if this is an overwrite
  if (dirty) {
    ++dirty_pages_;
  }

  // Section 4.2.1: write-dirty commits synchronously (G1); write-clean may be
  // buffered unless it replaces previous data at the same address, in which
  // case the mapping change must be durable before completion (G2). In kFull
  // mode clean inserts are also synchronous (the FlashTier-C/D config).
  LogRecord rec;
  rec.lsn = persist_->NextLsn();
  rec.type = LogOpType::kInsertPage;
  rec.key = lbn;
  rec.ppn = ppn;
  rec.dirty_bits = dirty ? 1 : 0;
  const bool sync = dirty || had_old || config_.mode == ConsistencyMode::kFull;
  persist_->Append(rec, sync);
  persist_->MaybeCheckpoint([this] { return SnapshotForCheckpoint(); });
  MaybeEnduranceMaintenance();
  MaybeAudit();
  return Status::kOk;
}

void SscDevice::MaybeEnduranceMaintenance() {
  if (config_.wear_level_interval_writes > 0 &&
      ++writes_since_wear_level_ >= config_.wear_level_interval_writes) {
    writes_since_wear_level_ = 0;
    WearLevelOnce(config_.wear_level_max_diff);
  }
  if (config_.patrol_interval_writes > 0 &&
      ++writes_since_patrol_ >= config_.patrol_interval_writes) {
    writes_since_patrol_ = 0;
    PatrolFlash(config_.patrol_blocks_per_pass);
  }
}

void SscDevice::MaybeAudit() {
  if (!audit_hook_) {
    return;
  }
  if (ftl_stats_.gc_invocations == last_audited_gc_ &&
      persist_->stats().checkpoints == last_audited_checkpoints_) {
    return;
  }
  last_audited_gc_ = ftl_stats_.gc_invocations;
  last_audited_checkpoints_ = persist_->stats().checkpoints;
  audit_hook_(*this);
}

bool SscDevice::InvalidateOldVersion(Lbn lbn) {
  if (const uint64_t* packed = page_map_.Find(lbn); packed != nullptr) {
    const Ppn old = PackedPpn(*packed);
    if (PackedDirty(*packed)) {
      --dirty_pages_;
    }
    AssertOk(device_->MarkInvalid(old));
    page_map_.Erase(lbn);
    LogRecord rec;
    rec.lsn = persist_->NextLsn();
    rec.type = LogOpType::kRemovePage;
    rec.key = lbn;
    persist_->Append(rec, /*sync=*/false);
    --cached_pages_;
    return true;
  }
  const uint32_t ppb = device_->geometry().pages_per_block;
  const uint64_t logical = lbn / ppb;
  const uint32_t off = static_cast<uint32_t>(lbn % ppb);
  BlockEntry* e = block_map_.Find(logical);
  if (e == nullptr || ((e->present_bits >> off) & 1u) == 0) {
    return false;
  }
  AssertOk(device_->MarkInvalid(device_->geometry().FirstPpnOf(e->phys) + off));
  if ((e->dirty_bits >> off) & 1u) {
    --dirty_pages_;
  }
  e->present_bits &= ~(uint64_t{1} << off);
  e->dirty_bits &= ~(uint64_t{1} << off);
  --cached_pages_;
  LogRecord rec;
  rec.lsn = persist_->NextLsn();
  rec.type = LogOpType::kClearBlockPages;
  rec.key = logical;
  rec.dirty_bits = uint64_t{1} << off;  // mask of bits cleared
  persist_->Append(rec, /*sync=*/false);
  if (e->present_bits == 0) {
    const PhysBlock phys = e->phys;
    block_map_.Erase(logical);
    LogRecord rm;
    rm.lsn = persist_->NextLsn();
    rm.type = LogOpType::kRemoveBlock;
    rm.key = logical;
    persist_->Append(rm, /*sync=*/false);
    phys_to_logical_[phys] = kInvalidLbn;
    dead_blocks_.push_back(phys);
  }
  return true;
}

Status SscDevice::Evict(Lbn lbn) {
  const bool had = InvalidateOldVersion(lbn);
  if (had) {
    // Eviction is durable before the request completes (G3).
    persist_->Flush();
  }
  MaybeAudit();
  return Status::kOk;
}

Status SscDevice::Clean(Lbn lbn) {
  if (uint64_t* packed = page_map_.Find(lbn); packed != nullptr) {
    if (PackedDirty(*packed)) {
      *packed = Pack(PackedPpn(*packed), false);
      --dirty_pages_;
      LogRecord rec;
      rec.lsn = persist_->NextLsn();
      rec.type = LogOpType::kSetCleanPage;
      rec.key = lbn;
      persist_->Append(rec, /*sync=*/false);
    }
    return Status::kOk;
  }
  const uint32_t ppb = device_->geometry().pages_per_block;
  const uint64_t logical = lbn / ppb;
  const uint32_t off = static_cast<uint32_t>(lbn % ppb);
  BlockEntry* e = block_map_.Find(logical);
  if (e == nullptr || ((e->present_bits >> off) & 1u) == 0) {
    return Status::kNotPresent;
  }
  if ((e->dirty_bits >> off) & 1u) {
    e->dirty_bits &= ~(uint64_t{1} << off);
    --dirty_pages_;
    LogRecord rec;
    rec.lsn = persist_->NextLsn();
    rec.type = LogOpType::kSetCleanBlocks;
    rec.key = logical;
    rec.dirty_bits = uint64_t{1} << off;  // mask of bits cleared
    persist_->Append(rec, /*sync=*/false);
  }
  return Status::kOk;
}

void SscDevice::Exists(Lbn start, uint64_t count, Bitmap* dirty_out) {
  dirty_out->Resize(count);
  device_->pipeline()->ExecuteControl(config_.timings.control_us, start);  // device-memory scan
  const uint32_t ppb = device_->geometry().pages_per_block;
  for (uint64_t i = 0; i < count; ++i) {
    const Lbn lbn = start + i;
    if (const uint64_t* packed = page_map_.Find(lbn); packed != nullptr) {
      if (PackedDirty(*packed)) {
        dirty_out->Set(i);
      }
      continue;
    }
    if (const BlockEntry* e = block_map_.Find(lbn / ppb); e != nullptr) {
      const uint32_t off = static_cast<uint32_t>(lbn % ppb);
      if (((e->present_bits >> off) & 1u) != 0 && ((e->dirty_bits >> off) & 1u) != 0) {
        dirty_out->Set(i);
      }
    }
  }
}

void SscDevice::ExistsDetail(Lbn start, uint64_t count, std::vector<BlockInfo>* out) {
  out->assign(count, BlockInfo{});
  device_->pipeline()->ExecuteControl(config_.timings.control_us, start);  // device-memory scan
  const uint32_t ppb = device_->geometry().pages_per_block;
  for (uint64_t i = 0; i < count; ++i) {
    const Lbn lbn = start + i;
    BlockInfo& info = (*out)[i];
    if (const uint64_t* packed = page_map_.Find(lbn); packed != nullptr) {
      info.present = true;
      info.dirty = PackedDirty(*packed);
      info.access_frequency = 1;  // page-mapped: written at least once recently
      continue;
    }
    if (const BlockEntry* e = block_map_.Find(lbn / ppb); e != nullptr) {
      const uint32_t off = static_cast<uint32_t>(lbn % ppb);
      if ((e->present_bits >> off) & 1u) {
        info.present = true;
        info.dirty = ((e->dirty_bits >> off) & 1u) != 0;
        info.access_frequency = e->access_count;
      }
    }
  }
}

uint32_t SscDevice::BackgroundCollect(uint64_t budget_us) {
  const uint64_t deadline = clock_->now_us() + budget_us;
  uint32_t reclaimed = 0;
  while (clock_->now_us() < deadline) {
    if (ReclaimDeadBlock()) {
      ++reclaimed;
      continue;
    }
    const uint64_t free_before = allocator_->FreeCount();
    if (!CollectFullestPlane()) {
      break;  // nothing evictable; don't burn idle time copying
    }
    reclaimed += static_cast<uint32_t>(allocator_->FreeCount() - free_before);
  }
  MaybeAudit();
  return reclaimed;
}

bool SscDevice::WearLevelOnce(uint32_t max_wear_diff) {
  if (device_->MaxWearDiff() <= max_wear_diff) {
    return false;
  }
  // Move the data block sitting on the least-worn flash (statistically the
  // coldest) onto the most-worn free block, retiring the young block into
  // the allocation pool where it will absorb future erases.
  PhysBlock coldest = kInvalidBlock;
  uint32_t coldest_wear = ~0u;
  for (PhysBlock b = 0; b < device_->geometry().TotalBlocks(); ++b) {
    if (phys_to_logical_[b] != kInvalidLbn && device_->erase_count(b) < coldest_wear) {
      coldest_wear = device_->erase_count(b);
      coldest = b;
    }
  }
  if (coldest == kInvalidBlock) {
    return false;
  }
  const PhysBlock destination = allocator_->AllocateMostWorn();
  if (destination == kInvalidBlock) {
    return false;
  }
  if (device_->erase_count(destination) <= coldest_wear + max_wear_diff) {
    allocator_->Free(destination);  // spread is not where we can fix it
    return false;
  }
  if (!IsOk(RelocateDataBlock(coldest, phys_to_logical_[coldest], destination))) {
    return false;
  }
  ++ftl_stats_.wl_migrations;
  return true;
}

uint32_t SscDevice::PatrolFlash(uint32_t max_blocks) {
  const FaultPlan& plan = device_->fault_plan();
  if (plan.read_disturb_limit == 0 && plan.retention_age_us == 0) {
    return 0;
  }
  const uint32_t total = device_->geometry().TotalBlocks();
  uint32_t refreshed = 0;
  for (uint32_t step = 0; step < total && refreshed < max_blocks; ++step) {
    const PhysBlock b = patrol_cursor_;
    patrol_cursor_ = (patrol_cursor_ + 1) % total;
    const uint64_t logical = phys_to_logical_[b];
    if (logical == kInvalidLbn) {
      continue;
    }
    // "Risky" = exposure at 75% of the device's fault threshold. The patrol
    // is not paused against fault injection: its own relocation reads can
    // trigger the very disturb faults it is racing, which is the race the
    // aging harness measures (corruption-vs-repair).
    const bool disturb_risk =
        plan.read_disturb_limit > 0 &&
        device_->ReadsSinceErase(b) * 4 >= static_cast<uint64_t>(plan.read_disturb_limit) * 3;
    const bool retention_risk = plan.retention_age_us > 0 &&
                                device_->OldestProgramAgeUs(b) * 4 >= plan.retention_age_us * 3;
    if (!disturb_risk && !retention_risk) {
      continue;
    }
    const PhysBlock destination = allocator_->Allocate();
    if (destination == kInvalidBlock) {
      break;  // no slack this pass; the cursor resumes here next time
    }
    if (IsOk(RelocateDataBlock(b, logical, destination))) {
      ++refreshed;
      ++ftl_stats_.patrol_repairs;
    }
  }
  return refreshed;
}

Status SscDevice::RelocateDataBlock(PhysBlock phys, uint64_t logical, PhysBlock destination) {
  BlockEntry* e = block_map_.Find(logical);
  if (e == nullptr || e->phys != phys) {
    allocator_->Free(destination);
    return Status::kInvalidArgument;
  }
  const FlashGeometry& g = device_->geometry();
  const uint32_t ppb = g.pages_per_block;
  uint64_t present = 0;
  uint64_t dirty = 0;
  bool dst_failed = false;
  for (uint32_t off = 0; off < ppb; ++off) {
    if (((e->present_bits >> off) & 1u) == 0) {
      if (!dst_failed) {
        AssertOk(device_->SkipPage(destination));
      }
      continue;
    }
    const Lbn lbn = logical * ppb + off;
    const Ppn src = g.FirstPpnOf(phys) + off;
    const bool src_dirty = ((e->dirty_bits >> off) & 1u) != 0;
    Status cs = dst_failed ? Status::kIoError : device_->CopyPage(src, destination, nullptr);
    if (cs == Status::kCorrupt || cs == Status::kIoError) {
      // Either the source is unreadable or the destination stopped taking
      // programs; both ways this page cannot move, and the source block is
      // being vacated — the page is lost.
      dst_failed = dst_failed || cs == Status::kIoError;
      AssertOk(device_->MarkInvalid(src));
      --cached_pages_;
      if (src_dirty) {
        --dirty_pages_;
      }
      NoteLoss(lbn, src_dirty);
      if (cs == Status::kCorrupt) {
        AssertOk(device_->SkipPage(destination));
      }
      continue;
    }
    if (!IsOk(cs)) {
      return cs;
    }
    present |= uint64_t{1} << off;
    if (src_dirty) {
      dirty |= uint64_t{1} << off;
    }
  }
  if (present == 0) {
    block_map_.Erase(logical);
    LogRecord rm;
    rm.lsn = persist_->NextLsn();
    rm.type = LogOpType::kRemoveBlock;
    rm.key = logical;
    persist_->Append(rm, /*sync=*/false);
    phys_to_logical_[phys] = kInvalidLbn;
    dead_blocks_.push_back(phys);
    if (device_->BlockErased(destination) && !device_->BlockProgramFailed(destination)) {
      allocator_->Free(destination);
    } else {
      dead_blocks_.push_back(destination);
    }
    return Status::kIoError;
  }
  InstallDataBlock(logical, destination, present, dirty);
  return Status::kOk;
}

void SscDevice::ChargeExistsScan() {
  // Model the scan as batched exists commands, one per 64 Ki blocks of the
  // cached footprint; each is a device-RAM lookup plus a command round trip.
  const uint64_t calls = cached_pages_ / 65536 + 1;
  device_->pipeline()->ExecuteControl(calls * config_.timings.control_us, 0);
}

// ---------------------------------------------------------------------------
// Free space management (Section 4.3)
// ---------------------------------------------------------------------------

bool SscDevice::ReclaimDeadBlock() {
  if (dead_blocks_.empty()) {
    return false;
  }
  // Blocks with no live data: erase lazily. Mapping removals that made them
  // dead must be durable before the space is reused.
  persist_->Flush();
  const PhysBlock b = dead_blocks_.front();
  dead_blocks_.pop_front();
  EraseOrRetire(b);
  return true;
}

void SscDevice::EraseOrRetire(PhysBlock block) {
  if (IsOk(device_->EraseBlock(block)) || config_.break_retirement_for_testing) {
    allocator_->Free(block);
  } else {
    allocator_->Retire(block);
    ++ftl_stats_.retired_blocks;
  }
  persist_->NotifyEraseBarrier();
}

Status SscDevice::EnsureFreeBlocks(uint32_t want) {
  // Bound the loop: every iteration either frees a block or fails.
  for (uint32_t attempt = 0; attempt < device_->geometry().TotalBlocks() + 4; ++attempt) {
    if (allocator_->FreeCount() >= want) {
      return Status::kOk;
    }
    if (ReclaimDeadBlock()) {
      continue;
    }
    if (CollectFullestPlane()) {
      continue;
    }
    if (log_blocks_.size() > 1) {
      if (Status s = MergeOldestLogBlock(); !IsOk(s)) {
        return s;
      }
      continue;
    }
    return Status::kNoSpace;
  }
  return Status::kNoSpace;
}

Status SscDevice::EnsureActiveLogBlock() {
  if (!log_blocks_.empty() && !device_->BlockFull(log_blocks_.back()) &&
      !device_->BlockProgramFailed(log_blocks_.back())) {
    return Status::kOk;
  }
  if (log_blocks_.size() >= LogBlockLimit()) {
    if (Status s = MergeOldestLogBlock(); !IsOk(s)) {
      return s;
    }
  }
  PhysBlock block = allocator_->Allocate();
  if (block == kInvalidBlock) {
    if (Status s = EnsureFreeBlocks(1); !IsOk(s)) {
      return s;
    }
    block = allocator_->Allocate();
    if (block == kInvalidBlock) {
      return Status::kNoSpace;
    }
  }
  log_blocks_.push_back(block);
  log_contents_[block].clear();
  return Status::kOk;
}

bool SscDevice::CollectFullestPlane() {
  const FlashGeometry& g = device_->geometry();
  const uint32_t planes = g.planes;
  const uint32_t first = allocator_->FullestPlane();
  for (uint32_t step = 0; step < planes; ++step) {
    const uint32_t plane = (first + step) % planes;
    // Gather clean (fully evictable) data blocks in this plane with their
    // utilization; silent eviction picks the least-utilized (SE-Util victim
    // policy, also used for victim choice by SE-Merge).
    std::vector<std::pair<uint32_t, PhysBlock>> candidates;  // (valid pages, block)
    uint64_t birth_sum = 0;
    for (uint32_t i = 0; i < g.blocks_per_plane; ++i) {
      const PhysBlock b = g.BlockAt(plane, i);
      const Lbn logical = phys_to_logical_[b];
      if (logical == kInvalidLbn) {
        continue;
      }
      const BlockEntry* e = block_map_.Find(logical);
      if (e != nullptr && e->dirty_bits == 0) {
        candidates.emplace_back(device_->valid_pages(b), b);
        birth_sum += block_birth_[b];
      }
    }
    if (candidates.empty()) {
      continue;
    }
    // Age-aware SE-Util: freshly-merged blocks are sparse *because they are
    // young*, not because their data is stale. Prefer victims older than the
    // candidate-average birth; fall back to all candidates if that leaves
    // nothing (Section 4.1's eviction-guiding usage statistics).
    const uint64_t birth_cutoff = birth_sum / candidates.size();
    std::vector<std::pair<uint32_t, PhysBlock>> aged;
    for (const auto& c : candidates) {
      if (block_birth_[c.second] <= birth_cutoff) {
        aged.push_back(c);
      }
    }
    if (!aged.empty()) {
      candidates.swap(aged);
    }
    ++ftl_stats_.gc_invocations;
    std::sort(candidates.begin(), candidates.end());
    const size_t k = std::min<size_t>(config_.gc_victims_per_cycle, candidates.size());
    for (size_t i = 0; i < k; ++i) {
      SilentlyEvict(candidates[i].second, phys_to_logical_[candidates[i].second]);
    }
    return true;
  }
  return false;
}

void SscDevice::SilentlyEvict(PhysBlock phys, uint64_t logical) {
  BlockEntry* e = block_map_.Find(logical);
  assert(e != nullptr && e->phys == phys && e->dirty_bits == 0);
  const FlashGeometry& g = device_->geometry();
  const uint32_t ppb = g.pages_per_block;
  const uint32_t dropped = static_cast<uint32_t>(std::popcount(e->present_bits));
  for (uint32_t off = 0; off < ppb; ++off) {
    if ((e->present_bits >> off) & 1u) {
      AssertOk(device_->MarkInvalid(g.FirstPpnOf(phys) + off));
    }
  }
  cached_pages_ -= dropped;
  ftl_stats_.silently_evicted_pages += dropped;
  ++ftl_stats_.silent_evictions;
  block_map_.Erase(logical);
  LogRecord rec;
  rec.lsn = persist_->NextLsn();
  rec.type = LogOpType::kRemoveBlock;
  rec.key = logical;
  persist_->Append(rec, /*sync=*/false);
  phys_to_logical_[phys] = kInvalidLbn;
  // The removal must be durable before the block's space can be reused.
  persist_->Flush();
  EraseOrRetire(phys);
}

// ---------------------------------------------------------------------------
// Log-block reclamation: switch / partial / full merges
// ---------------------------------------------------------------------------

void SscDevice::RetireLogPage(Lbn lbn) {
  page_map_.Erase(lbn);
  LogRecord rec;
  rec.lsn = persist_->NextLsn();
  rec.type = LogOpType::kRemovePage;
  rec.key = lbn;
  persist_->Append(rec, /*sync=*/false);
}

void SscDevice::LogInsertBlockEntry(uint64_t logical, const BlockEntry& e) {
  LogRecord rec;
  rec.lsn = persist_->NextLsn();
  rec.type = LogOpType::kInsertBlock;
  rec.key = logical;
  rec.ppn = device_->geometry().FirstPpnOf(e.phys);
  rec.present_bits = e.present_bits;
  rec.dirty_bits = e.dirty_bits;
  persist_->Append(rec, /*sync=*/false);
}

void SscDevice::InstallDataBlock(uint64_t logical, PhysBlock phys, uint64_t present_bits,
                                 uint64_t dirty_bits) {
  // The remove of the old entry and the insert of its replacement must reach
  // the log as one atomic batch (Section 4.2.2: transient states exposing
  // stale or missing data are not possible) — so append both *before* any
  // flush, and only erase the old block once the batch is durable.
  PersistenceManager::AtomicBatchScope batch(persist_.get());
  BlockEntry* old = block_map_.Find(logical);
  PhysBlock old_phys = kInvalidBlock;
  if (old != nullptr) {
    old_phys = old->phys;
    assert(device_->valid_pages(old_phys) == 0);
    LogRecord rm;
    rm.lsn = persist_->NextLsn();
    rm.type = LogOpType::kRemoveBlock;
    rm.key = logical;
    persist_->Append(rm, /*sync=*/false);
    phys_to_logical_[old_phys] = kInvalidLbn;
  }
  BlockEntry fresh;
  fresh.phys = phys;
  fresh.present_bits = present_bits;
  fresh.dirty_bits = dirty_bits;
  block_map_.Insert(logical, fresh);
  LogInsertBlockEntry(logical, fresh);
  phys_to_logical_[phys] = logical;
  block_birth_[phys] = ++birth_counter_;
  if (old_phys != kInvalidBlock) {
    persist_->Flush();
    EraseOrRetire(old_phys);
  }
}

bool SscDevice::TrySwitchOrPartialMerge(PhysBlock victim) {
  const FlashGeometry& g = device_->geometry();
  const uint32_t ppb = g.pages_per_block;
  const auto it = log_contents_.find(victim);
  if (it == log_contents_.end() || it->second.empty()) {
    return false;
  }
  const std::vector<Lbn>& lpns = it->second;
  if (lpns[0] % ppb != 0) {
    return false;
  }
  // The merge's page-map removes and its block-map insert commit together
  // (see InstallDataBlock); an intermediate group commit would tear them.
  PersistenceManager::AtomicBatchScope merge_batch(persist_.get());
  const uint64_t logical = lpns[0] / ppb;
  const Ppn base = g.FirstPpnOf(victim);
  for (size_t i = 0; i < lpns.size(); ++i) {
    if (lpns[i] != logical * ppb + i || device_->page_state(base + i) != PageState::kValid) {
      return false;
    }
  }

  uint64_t present = 0;
  uint64_t dirty = 0;
  // The sequential prefix: page-mapped today, block-mapped after the switch.
  for (size_t i = 0; i < lpns.size(); ++i) {
    const uint64_t* packed = page_map_.Find(lpns[i]);
    assert(packed != nullptr && PackedPpn(*packed) == base + i);
    present |= uint64_t{1} << i;
    if (PackedDirty(*packed)) {
      dirty |= uint64_t{1} << i;
    }
    RetireLogPage(lpns[i]);
  }

  const bool full = lpns.size() == ppb;
  if (!full) {
    // Partial merge: complete the tail from wherever the newest version of
    // each remaining offset lives (another log block or the old data block).
    BlockEntry* old = block_map_.Find(logical);
    bool dst_failed = false;
    for (uint32_t off = static_cast<uint32_t>(lpns.size()); off < ppb; ++off) {
      const Lbn lbn = logical * ppb + off;
      Ppn src = kInvalidPpn;
      bool src_dirty = false;
      bool from_log = false;
      if (const uint64_t* packed = page_map_.Find(lbn); packed != nullptr) {
        src = PackedPpn(*packed);
        src_dirty = PackedDirty(*packed);
        from_log = true;
      } else if (old != nullptr && ((old->present_bits >> off) & 1u) != 0) {
        src = g.FirstPpnOf(old->phys) + off;
        src_dirty = ((old->dirty_bits >> off) & 1u) != 0;
      }
      if (src == kInvalidPpn) {
        if (!dst_failed) {
          AssertOk(device_->SkipPage(victim));
        }
        continue;
      }
      if (dst_failed) {
        // The victim aborted a program and can take no more. Log-resident
        // pages simply stay page-mapped; pages whose only copy is the old
        // data block go down with it.
        if (!from_log) {
          AssertOk(device_->MarkInvalid(src));
          --cached_pages_;
          if (src_dirty) {
            --dirty_pages_;
          }
          NoteLoss(lbn, src_dirty);
        }
        continue;
      }
      const Status cs = device_->CopyPage(src, victim, nullptr);
      if (cs == Status::kCorrupt) {
        // Unreadable source: the cached copy is lost; drop its mapping and
        // keep the offsets aligned with a skip. Report the loss before the
        // remove record — its append can crash-commit the removal.
        NoteLoss(lbn, src_dirty);
        AssertOk(device_->MarkInvalid(src));
        if (from_log) {
          RetireLogPage(lbn);
        }
        --cached_pages_;
        if (src_dirty) {
          --dirty_pages_;
        }
        AssertOk(device_->SkipPage(victim));
        continue;
      }
      if (cs == Status::kIoError) {
        dst_failed = true;
        if (!from_log) {
          AssertOk(device_->MarkInvalid(src));
          --cached_pages_;
          if (src_dirty) {
            --dirty_pages_;
          }
          NoteLoss(lbn, src_dirty);
        }
        continue;
      }
      if (!IsOk(cs)) {
        AssertOk(device_->SkipPage(victim));
        continue;
      }
      if (from_log) {
        RetireLogPage(lbn);
      }
      present |= uint64_t{1} << off;
      if (src_dirty) {
        dirty |= uint64_t{1} << off;
      }
    }
    ++ftl_stats_.partial_merges;
  } else {
    ++ftl_stats_.switch_merges;
  }

  log_contents_.erase(victim);
  InstallDataBlock(logical, victim, present, dirty);
  return true;
}

Status SscDevice::MergeLogicalBlock(uint64_t logical) {
  const FlashGeometry& g = device_->geometry();
  const uint32_t ppb = g.pages_per_block;
  // As in TrySwitchOrPartialMerge: the RetireLogPage removes below and the
  // final block-map insert must not be torn across a group-commit flush.
  PersistenceManager::AtomicBatchScope merge_batch(persist_.get());
  PhysBlock fresh = allocator_->Allocate();
  while (fresh == kInvalidBlock) {
    // Make room without copying if we can: erase dead blocks, then silently
    // evict clean blocks. Fail (with no side effects) only when neither works.
    if (!ReclaimDeadBlock() && !CollectFullestPlane()) {
      return Status::kNoSpace;
    }
    fresh = allocator_->Allocate();
  }

  BlockEntry* old = block_map_.Find(logical);
  uint64_t present = 0;
  uint64_t dirty = 0;
  bool dst_failed = false;
  for (uint32_t off = 0; off < ppb; ++off) {
    const Lbn lbn = logical * ppb + off;
    Ppn src = kInvalidPpn;
    bool src_dirty = false;
    bool from_log = false;
    if (const uint64_t* packed = page_map_.Find(lbn); packed != nullptr) {
      src = PackedPpn(*packed);
      src_dirty = PackedDirty(*packed);
      from_log = true;
    } else if (old != nullptr && ((old->present_bits >> off) & 1u) != 0) {
      src = g.FirstPpnOf(old->phys) + off;
      src_dirty = ((old->dirty_bits >> off) & 1u) != 0;
    }
    if (src == kInvalidPpn) {
      if (!dst_failed) {
        AssertOk(device_->SkipPage(fresh));
      }
      continue;
    }
    if (dst_failed) {
      // The destination aborted a program mid-merge. Log-resident pages stay
      // page-mapped (still live where they are); pages whose only copy is
      // the old data block are lost, because that block is being reclaimed.
      if (!from_log) {
        AssertOk(device_->MarkInvalid(src));
        --cached_pages_;
        if (src_dirty) {
          --dirty_pages_;
        }
        NoteLoss(lbn, src_dirty);
      }
      continue;
    }
    const Status cs = device_->CopyPage(src, fresh, nullptr);
    if (cs == Status::kCorrupt) {
      // Unreadable source: drop the page rather than abort the merge — a
      // clean page is a future miss, a dirty one is counted as data loss.
      // Report before the remove record: its append can crash-commit the
      // removal, and an unreported loss reads as a broken G1.
      NoteLoss(lbn, src_dirty);
      AssertOk(device_->MarkInvalid(src));
      if (from_log) {
        RetireLogPage(lbn);
        old = block_map_.Find(logical);
      }
      --cached_pages_;
      if (src_dirty) {
        --dirty_pages_;
      }
      AssertOk(device_->SkipPage(fresh));
      continue;
    }
    if (cs == Status::kIoError) {
      dst_failed = true;
      if (!from_log) {
        AssertOk(device_->MarkInvalid(src));
        --cached_pages_;
        if (src_dirty) {
          --dirty_pages_;
        }
        NoteLoss(lbn, src_dirty);
      }
      continue;
    }
    if (!IsOk(cs)) {
      return cs;
    }
    if (from_log) {
      RetireLogPage(lbn);
      old = block_map_.Find(logical);  // map may rehash on erase
    }
    present |= uint64_t{1} << off;
    if (src_dirty) {
      dirty |= uint64_t{1} << off;
    }
  }
  if (present == 0) {
    // Nothing survived into the fresh block (every source was lost, or the
    // destination failed immediately). Remove the now-empty old entry and
    // send both blocks through the dead queue instead of installing.
    if (old != nullptr) {
      const PhysBlock old_phys = old->phys;
      block_map_.Erase(logical);
      LogRecord rm;
      rm.lsn = persist_->NextLsn();
      rm.type = LogOpType::kRemoveBlock;
      rm.key = logical;
      persist_->Append(rm, /*sync=*/false);
      phys_to_logical_[old_phys] = kInvalidLbn;
      dead_blocks_.push_back(old_phys);
    }
    if (device_->BlockErased(fresh) && !device_->BlockProgramFailed(fresh)) {
      allocator_->Free(fresh);
    } else {
      dead_blocks_.push_back(fresh);
    }
    return Status::kOk;
  }
  InstallDataBlock(logical, fresh, present, dirty);
  return Status::kOk;
}

Status SscDevice::ForwardCopyLogBlock(PhysBlock victim) {
  // SE-Merge log reclamation (Section 4.3): instead of full merges, live log
  // pages are copied forward to the log frontier (still page-mapped), and
  // data blocks are only created by switch merges. Copy cost is one page per
  // *live* page — overwrite-heavy workloads leave log victims nearly empty.
  const FlashGeometry& g = device_->geometry();
  const Ppn base = g.FirstPpnOf(victim);
  const auto contents_it = log_contents_.find(victim);
  const std::vector<Lbn> lpns =
      contents_it != log_contents_.end() ? contents_it->second : std::vector<Lbn>{};
  for (size_t i = 0; i < lpns.size(); ++i) {
    if (device_->page_state(base + i) != PageState::kValid) {
      continue;
    }
    const Lbn lbn = lpns[i];
    uint64_t* packed = page_map_.Find(lbn);
    assert(packed != nullptr && PackedPpn(*packed) == base + i);
    const bool dirty = PackedDirty(*packed);
    // Destination: the active log block, growing the log as needed. A
    // program abort poisons the frontier block, so retry on a fresh one.
    Status cs = Status::kIoError;
    Ppn dst = kInvalidPpn;
    for (uint32_t attempt = 0; cs == Status::kIoError && attempt <= config_.program_retry_limit;
         ++attempt) {
      if (attempt > 0) {
        ++ftl_stats_.program_retries;
      }
      if (log_blocks_.empty() || device_->BlockFull(log_blocks_.back()) ||
          device_->BlockProgramFailed(log_blocks_.back())) {
        PhysBlock fresh = allocator_->Allocate();
        while (fresh == kInvalidBlock) {
          if (!ReclaimDeadBlock() && !CollectFullestPlane()) {
            return Status::kNoSpace;
          }
          fresh = allocator_->Allocate();
        }
        log_blocks_.push_back(fresh);
        log_contents_[fresh].clear();
      }
      cs = device_->CopyPage(base + i, log_blocks_.back(), &dst);
    }
    if (cs == Status::kCorrupt) {
      // Unreadable source: the page cannot move forward; drop it. Report the
      // loss before the remove record — its append can crash-commit the
      // removal.
      NoteLoss(lbn, dirty);
      AssertOk(device_->MarkInvalid(base + i));
      RetireLogPage(lbn);
      --cached_pages_;
      if (dirty) {
        --dirty_pages_;
      }
      continue;
    }
    if (!IsOk(cs)) {
      return cs;
    }
    const PhysBlock active = log_blocks_.back();
    page_map_.Insert(lbn, Pack(dst, dirty));
    log_contents_[active].push_back(lbn);
    LogRecord rec;
    rec.lsn = persist_->NextLsn();
    rec.type = LogOpType::kInsertPage;
    rec.key = lbn;
    rec.ppn = dst;
    rec.dirty_bits = dirty ? 1 : 0;
    persist_->Append(rec, /*sync=*/false);
  }
  log_contents_.erase(victim);
  persist_->Flush();
  EraseOrRetire(victim);
  return Status::kOk;
}

Status SscDevice::MergeOldestLogBlock() {
  if (log_blocks_.size() <= 1) {
    return Status::kNoSpace;
  }
  ++ftl_stats_.gc_invocations;
  const PhysBlock victim = log_blocks_.front();
  log_blocks_.pop_front();

  if (TrySwitchOrPartialMerge(victim)) {
    return Status::kOk;
  }

  // Forward-copying pays only when most of the victim is superseded; a
  // mostly-live victim would just rotate through the log (copying its pages
  // to the frontier over and over), so consolidate it into data blocks
  // instead. The log may not outgrow the fraction its page-level mappings
  // reserved memory for (Section 5: 0-20% for SSC-R).
  if (config_.policy == EvictionPolicy::kSeMerge &&
      log_blocks_.size() < LogBlockLimit() &&
      device_->valid_pages(victim) <= device_->geometry().pages_per_block / 2) {
    const Status s = ForwardCopyLogBlock(victim);
    if (!IsOk(s)) {
      // Could not place the remaining live pages (no space, or the medium
      // kept rejecting programs); the victim is still a consistent log block
      // (uncopied pages stay page-mapped into it).
      log_blocks_.push_front(victim);
    }
    return s;
  }

  const FlashGeometry& g = device_->geometry();
  const Ppn base = g.FirstPpnOf(victim);
  std::vector<uint64_t> logicals;
  const auto contents_it = log_contents_.find(victim);
  if (contents_it != log_contents_.end()) {
    const std::vector<Lbn>& lpns = contents_it->second;
    for (size_t i = 0; i < lpns.size(); ++i) {
      if (device_->page_state(base + i) == PageState::kValid) {
        const uint64_t l = lpns[i] / g.pages_per_block;
        if (std::find(logicals.begin(), logicals.end(), l) == logicals.end()) {
          logicals.push_back(l);
        }
      }
    }
  }
  for (size_t i = 0; i < logicals.size(); ++i) {
    if (Status s = MergeLogicalBlock(logicals[i]); !IsOk(s)) {
      // MergeLogicalBlock fails only before copying anything (no destination
      // block available), so the victim's remaining pages are still
      // page-mapped and consistent: put it back and report the shortage
      // instead of leaking it.
      log_blocks_.push_front(victim);
      return s;
    }
  }
  if (!logicals.empty()) {
    ++ftl_stats_.full_merges;
  }

  if (device_->valid_pages(victim) != 0) {
    // A degraded merge (destination program failures) left some of the
    // victim's pages page-mapped in place. The victim is still a consistent
    // log block; put it back rather than orphaning live pages.
    log_blocks_.push_front(victim);
    return Status::kOk;
  }
  log_contents_.erase(victim);
  persist_->Flush();
  EraseOrRetire(victim);
  return Status::kOk;
}

// ---------------------------------------------------------------------------
// Crash and recovery (Section 4.2.2)
// ---------------------------------------------------------------------------

void SscDevice::DrainLog() {
  if (config_.mode == ConsistencyMode::kNone) {
    return;
  }
  persist_->NoteBackpressureStall();
  persist_->ForceCheckpoint();
}

void SscDevice::SimulateCrash() {
  ResetRamState();
  // Power failure loses in-flight device work: the event engine's resource
  // frontiers reset along with the device's RAM state.
  device_->pipeline()->Reset();
  persist_->Crash();
}

void SscDevice::ResetRamState() {
  block_map_.Clear();
  page_map_.Clear();
  log_blocks_.clear();
  log_contents_.clear();
  dead_blocks_.clear();
  phys_to_logical_.assign(device_->geometry().TotalBlocks(), kInvalidLbn);
  block_birth_.assign(device_->geometry().TotalBlocks(), 0);
  birth_counter_ = 0;
  cached_pages_ = 0;
  dirty_pages_ = 0;
  writes_since_wear_level_ = 0;
  writes_since_patrol_ = 0;
  patrol_cursor_ = 0;
}

Status SscDevice::Recover() {
  // Recovery is re-entrant: a crash at any RecoveryPoint leaves durable
  // state untouched, and starting from scratch here discards whatever a
  // previous aborted attempt had rebuilt (without this reset, a second
  // Recover would double-queue dead blocks and double-count pages).
  ResetRamState();
  recovered_kv_ = RecoveredKv{};

  std::vector<CheckpointEntry> checkpoint;
  std::vector<LogRecord> tail;
  persist_->Recover(&checkpoint, &tail);

  const uint64_t rebuild_start_us = clock_->now_us();
  const FlashGeometry& g = device_->geometry();
  const uint32_t ppb = g.pages_per_block;

  // 1. Forward maps: checkpoint, then roll the log forward. Pre-size both
  // maps for the checkpoint's bulk load so recovery pays one table
  // allocation per map instead of a rehash cascade.
  size_t block_entries = 0;
  size_t page_entries = 0;
  for (const CheckpointEntry& e : checkpoint) {
    if (e.kv) {
      continue;
    }
    (e.block_level ? block_entries : page_entries) += 1;
  }
  block_map_.Reserve(block_entries);
  page_map_.Reserve(page_entries);
  for (const CheckpointEntry& e : checkpoint) {
    if (e.kv) {
      // KV slot-directory entries are opaque to the SSC's own maps; they are
      // handed to the KV layer, which rebuilds after the device finishes.
      recovered_kv_.checkpoint.push_back(e);
      continue;
    }
    if (e.block_level) {
      BlockEntry be;
      be.phys = g.BlockOf(e.ppn);
      be.present_bits = e.present_bits;
      be.dirty_bits = e.dirty_bits;
      block_map_.Insert(e.key, be);
    } else {
      page_map_.Insert(e.key, Pack(e.ppn, e.dirty_bits != 0));
    }
  }
  for (const LogRecord& r : tail) {
    switch (r.type) {
      case LogOpType::kInsertPage:
        page_map_.Insert(r.key, Pack(r.ppn, r.dirty_bits != 0));
        break;
      case LogOpType::kRemovePage:
        page_map_.Erase(r.key);
        break;
      case LogOpType::kInsertBlock: {
        BlockEntry be;
        be.phys = g.BlockOf(r.ppn);
        be.present_bits = r.present_bits;
        be.dirty_bits = r.dirty_bits;
        block_map_.Insert(r.key, be);
        break;
      }
      case LogOpType::kRemoveBlock:
        block_map_.Erase(r.key);
        break;
      case LogOpType::kClearBlockPages:
        if (BlockEntry* e = block_map_.Find(r.key); e != nullptr) {
          e->present_bits &= ~r.dirty_bits;
          e->dirty_bits &= ~r.dirty_bits;
          if (e->present_bits == 0) {
            block_map_.Erase(r.key);
          }
        }
        break;
      case LogOpType::kSetCleanPage:
        if (uint64_t* packed = page_map_.Find(r.key); packed != nullptr) {
          *packed = Pack(PackedPpn(*packed), false);
        }
        break;
      case LogOpType::kSetCleanBlocks:
        if (BlockEntry* e = block_map_.Find(r.key); e != nullptr) {
          e->dirty_bits &= ~r.dirty_bits;
        }
        break;
      case LogOpType::kKvInsertSlot:
      case LogOpType::kKvDeleteSlot:
        recovered_kv_.log.push_back(r);
        break;
    }
  }

  // 2. Reverse maps and block state, reconciled against the medium. Entries
  // pointing at pages that never became durable are pruned; valid pages no
  // recovered mapping references are invalidated (their inserts were lost in
  // the crash — equivalent to a silent eviction, per Section 4.2.1).
  std::unordered_map<PhysBlock, uint64_t> log_refs;  // block -> offset bitmap
  std::vector<Lbn> dropped_pages;
  page_map_.ForEach([&](Lbn lbn, uint64_t packed) {
    const Ppn ppn = PackedPpn(packed);
    if (device_->page_state(ppn) == PageState::kFree || device_->oob(ppn).lbn != lbn) {
      dropped_pages.push_back(lbn);
      return;
    }
    log_refs[g.BlockOf(ppn)] |= uint64_t{1} << g.PageOf(ppn);
  });
  for (Lbn lbn : dropped_pages) {
    page_map_.Erase(lbn);
  }

  std::vector<uint64_t> dropped_blocks;
  block_map_.ForEach([&](uint64_t logical, const BlockEntry& e) {
    bool any = false;
    for (uint32_t off = 0; off < ppb; ++off) {
      if (((e.present_bits >> off) & 1u) != 0 &&
          device_->page_state(g.FirstPpnOf(e.phys) + off) != PageState::kFree) {
        any = true;
        break;
      }
    }
    if (!any) {
      dropped_blocks.push_back(logical);
    }
  });
  for (uint64_t logical : dropped_blocks) {
    block_map_.Erase(logical);
  }
  block_map_.ForEach([&](uint64_t logical, const BlockEntry& e) {
    phys_to_logical_[e.phys] = logical;
  });

  // Rebuild allocator and per-block validity. The free-list sweep and the
  // validity reconciliation overlap normal activity and do not delay
  // start-up (Section 6.4) — the forward map alone decides what a read may
  // see — so neither is charged against recovery.
  allocator_ = std::make_unique<BlockAllocator>(*device_, g.TotalBlocks());  // starts empty
  cached_pages_ = 0;
  dirty_pages_ = 0;
  std::vector<std::pair<uint64_t, PhysBlock>> recovered_logs;  // (first seq, block)
  for (PhysBlock b = 0; b < g.TotalBlocks(); ++b) {
    const Ppn base = g.FirstPpnOf(b);
    const uint64_t logical = phys_to_logical_[b];
    uint64_t want = 0;
    if (logical != kInvalidLbn) {
      want = block_map_.Find(logical)->present_bits;
    } else if (const auto it = log_refs.find(b); it != log_refs.end()) {
      want = it->second;
    }
    if (want == 0) {
      if (device_->BlockBad(b)) {
        // Bad blocks are sticky medium state: re-retire without recounting
        // (the failure was counted when the erase first failed). Mappings
        // never reference them — removals are flushed before any erase.
        // With retirement deliberately broken, keep mis-freeing them so the
        // invariant checker can prove it notices.
        if (config_.break_retirement_for_testing) {
          allocator_->Free(b);
        } else {
          allocator_->Retire(b);
        }
      } else if (device_->BlockErased(b)) {
        allocator_->Free(b);
      } else {
        dead_blocks_.push_back(b);
      }
      continue;
    }
    uint64_t min_seq = ~uint64_t{0};
    for (uint32_t off = 0; off < device_->write_pointer(b); ++off) {
      const bool referenced = ((want >> off) & 1u) != 0;
      const PageState state = device_->page_state(base + off);
      if (state == PageState::kValid && !referenced) {
        // The insert that would have referenced this page was lost in the
        // crash: treat it as silently evicted.
        AssertOk(device_->MarkInvalid(base + off));
      } else if (state == PageState::kInvalid && referenced) {
        // Pre-crash RAM had superseded this page (e.g. a merge was copying
        // it) but only the old mapping is durable; the old page is live.
        AssertOk(device_->MarkValid(base + off));
      }
      if (referenced) {
        min_seq = std::min(min_seq, device_->oob(base + off).seq);
      }
    }
    if (logical == kInvalidLbn) {
      recovered_logs.emplace_back(min_seq, b);
    }
  }

  // 3. Log-block list: FIFO by program sequence; a partially-filled block (at
  // most one under normal operation) goes to the back as the active block.
  // This is the one scan that MUST finish before the device accepts writes —
  // appends and GC need the log contents — so its OOB reads (one metadata
  // page per log block) are what the rebuild phase charges.
  std::sort(recovered_logs.begin(), recovered_logs.end());
  std::stable_partition(recovered_logs.begin(), recovered_logs.end(),
                        [&](const auto& p) { return device_->BlockFull(p.second); });
  for (const auto& [seq, b] : recovered_logs) {
    log_blocks_.push_back(b);
    std::vector<Lbn>& lpns = log_contents_[b];
    for (uint32_t off = 0; off < device_->write_pointer(b); ++off) {
      lpns.push_back(device_->oob(g.FirstPpnOf(b) + off).lbn);
    }
  }

  // 4. Page counts.
  page_map_.ForEach([&](Lbn, uint64_t packed) {
    ++cached_pages_;
    if (PackedDirty(packed)) {
      ++dirty_pages_;
    }
  });
  block_map_.ForEach([&](uint64_t, const BlockEntry& e) {
    cached_pages_ += static_cast<uint64_t>(std::popcount(e.present_bits));
    dirty_pages_ += static_cast<uint64_t>(std::popcount(e.dirty_bits));
  });

  device_->pipeline()->ExecuteLog(recovered_logs.size() * config_.timings.ReadCostUs());
  persist_->RecordRebuildTime(clock_->now_us() - rebuild_start_us);
  persist_->NotifyRecoveryPoint(RecoveryPoint::kMapsRebuilt);
  persist_->NotifyRecoveryPoint(RecoveryPoint::kDone);
  return Status::kOk;
}

std::vector<CheckpointEntry> SscDevice::SnapshotForCheckpoint() const {
  // Only forward mappings are checkpointed (Section 4.2.2); reverse maps and
  // block state live in OOB areas and are reconstructed at recovery.
  std::vector<CheckpointEntry> entries;
  entries.reserve(page_map_.size() + block_map_.size());
  page_map_.ForEach([&entries](Lbn lbn, uint64_t packed) {
    CheckpointEntry e;
    e.block_level = false;
    e.key = lbn;
    e.ppn = PackedPpn(packed);
    e.dirty_bits = PackedDirty(packed) ? 1 : 0;
    entries.push_back(e);
  });
  const FlashGeometry& g = device_->geometry();
  block_map_.ForEach([&entries, &g](uint64_t logical, const BlockEntry& be) {
    CheckpointEntry e;
    e.block_level = true;
    e.key = logical;
    e.ppn = g.FirstPpnOf(be.phys);
    e.present_bits = be.present_bits;
    e.dirty_bits = be.dirty_bits;
    entries.push_back(e);
  });
  if (kv_snapshot_source_) {
    std::vector<CheckpointEntry> kv_entries = kv_snapshot_source_();
    entries.insert(entries.end(), kv_entries.begin(), kv_entries.end());
  }
  return entries;
}

// ---------------------------------------------------------------------------
// Memory accounting (Table 4)
// ---------------------------------------------------------------------------

size_t SscDevice::DeviceMemoryUsage() const {
  size_t bytes = block_map_.MemoryUsage() + page_map_.MemoryUsage();
  for (const auto& [block, lpns] : log_contents_) {
    bytes += sizeof(block) + lpns.capacity() * sizeof(Lbn);
  }
  bytes += phys_to_logical_.capacity() * sizeof(Lbn);
  bytes += allocator_->MemoryUsage();
  bytes += persist_->MemoryUsage();
  return bytes;
}

size_t SscDevice::ReservedDeviceMemoryUsage() const {
  // Page-level mappings must be reserved for the maximum log fraction
  // (Section 5): entry plus amortized group/bitmap overhead per bucket.
  const double fraction = config_.policy == EvictionPolicy::kSeUtil ? config_.log_fraction
                                                                    : config_.max_log_fraction;
  const auto reserved_entries =
      static_cast<uint64_t>(static_cast<double>(config_.capacity_pages) * fraction);
  const size_t per_entry = sizeof(SparseHashMap<Lbn, uint64_t>::Entry) + 2;
  size_t bytes = block_map_.MemoryUsage() + reserved_entries * per_entry;
  for (const auto& [block, lpns] : log_contents_) {
    bytes += sizeof(block) + lpns.capacity() * sizeof(Lbn);
  }
  bytes += phys_to_logical_.capacity() * sizeof(Lbn);
  bytes += allocator_->MemoryUsage();
  bytes += persist_->MemoryUsage();
  return bytes;
}

}  // namespace flashtier
