#include "src/policy/frequency_sketch.h"

#include <algorithm>

#include "src/sparsemap/sparse_hash_map.h"  // MixHash64

namespace flashtier {

namespace {

uint32_t RoundUpPow2(uint32_t v) {
  uint32_t p = 1;
  while (p < v && p < (1u << 30)) {
    p <<= 1;
  }
  return p;
}

}  // namespace

FrequencySketchPolicy::FrequencySketchPolicy(const Options& options,
                                             size_t reject_ghost_entries)
    : AdmissionPolicy(reject_ghost_entries),
      width_(RoundUpPow2(std::max<uint32_t>(64, options.width))),
      rows_(std::max<uint32_t>(1, options.rows)),
      threshold_(std::max<uint32_t>(1, options.admit_threshold)),
      halve_interval_(options.halve_interval != 0 ? options.halve_interval
                                                  : 8ull * width_) {
  row_seeds_.reserve(rows_);
  for (uint32_t r = 0; r < rows_; ++r) {
    // Distinct per-row hash seeds derived from the configured seed; the
    // golden-ratio stride decorrelates rows even for adjacent seeds.
    row_seeds_.push_back(MixHash64(options.seed + 0x9e3779b97f4a7c15ull * (r + 1)));
  }
  counters_.assign(static_cast<size_t>(rows_) * width_, 0);
}

size_t FrequencySketchPolicy::IndexOf(uint32_t row, Lbn lbn) const {
  const uint64_t h = MixHash64(lbn ^ row_seeds_[row]);
  return static_cast<size_t>(row) * width_ + (h & (width_ - 1));
}

void FrequencySketchPolicy::OnAccess(Lbn lbn, bool) {
  for (uint32_t r = 0; r < rows_; ++r) {
    uint8_t& c = counters_[IndexOf(r, lbn)];
    if (c < 0xff) {
      ++c;
    }
  }
  if (++accesses_ % halve_interval_ == 0) {
    for (uint8_t& c : counters_) {
      c >>= 1;
    }
    ++halvings_;
  }
}

uint32_t FrequencySketchPolicy::Estimate(Lbn lbn) const {
  uint32_t estimate = 0xff;
  for (uint32_t r = 0; r < rows_; ++r) {
    estimate = std::min<uint32_t>(estimate, counters_[IndexOf(r, lbn)]);
  }
  return estimate;
}

}  // namespace flashtier
