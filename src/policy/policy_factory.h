// Configuration and construction of admission policies. PolicyConfig is the
// declarative knob that rides in SystemConfig; ShardPolicyConfig splits the
// capacity-like knobs across shards so an N-shard system's total policy
// memory and flash-write budget match the single-shard configuration.

#ifndef FLASHTIER_POLICY_POLICY_FACTORY_H_
#define FLASHTIER_POLICY_POLICY_FACTORY_H_

#include <memory>
#include <string>

#include "src/flash/timing.h"
#include "src/policy/admission_policy.h"

namespace flashtier {

enum class AdmissionKind : uint8_t {
  kAdmitAll,          // default; bit-identical to having no policy at all
  kGhostLru,          // second-hit admission over a bounded ghost table
  kFrequencySketch,   // counting-sketch threshold admission with aging
  kWriteRateLimiter,  // virtual-time token bucket on flash-write bandwidth
};

struct PolicyConfig {
  AdmissionKind kind = AdmissionKind::kAdmitAll;
  uint64_t seed = 1;
  // Window of recently rejected LBNs every policy keeps for the regret
  // counter and the rejected-block-absent audit.
  uint32_t reject_ghost_entries = 4096;
  // GhostLru.
  uint32_t ghost_entries = 16384;
  uint32_t ghost_required_misses = 2;
  // FrequencySketch.
  uint32_t sketch_width = 16384;
  uint32_t sketch_rows = 4;
  uint32_t sketch_threshold = 2;
  uint64_t sketch_halve_interval = 0;  // 0 = 8x width
  // WriteRateLimiter.
  double write_rate_pages_per_sec = 2000.0;
  double write_burst_pages = 256.0;
};

// Stable CLI / JSON name for a policy kind.
const char* AdmissionKindName(AdmissionKind kind);

// Parses a CLI name ("admit-all", "ghost-lru", "freq-sketch", "write-limit").
// Returns false (leaving *out untouched) for unknown names.
bool ParseAdmissionKind(const std::string& name, AdmissionKind* out);

// "admit-all, ghost-lru, freq-sketch, write-limit" — for error messages.
const char* KnownAdmissionNames();

// Builds one policy instance. `clock` is the owning shard's virtual clock
// (required by the write-rate limiter; the others ignore it).
std::unique_ptr<AdmissionPolicy> MakeAdmissionPolicy(const PolicyConfig& config,
                                                     const SimClock* clock);

// The per-shard slice of `config` for shard `shard_index` of `shards`:
// table/sketch capacities and the write budget are divided (with small
// floors), and the seed is decorrelated per shard.
PolicyConfig ShardPolicyConfig(const PolicyConfig& config, uint32_t shards,
                               uint32_t shard_index);

}  // namespace flashtier

#endif  // FLASHTIER_POLICY_POLICY_FACTORY_H_
