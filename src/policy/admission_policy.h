// Admission control for the flash cache (DESIGN.md §5f).
//
// FlashTier's managers admit every read miss and every write into the cache,
// which maximizes hit rate but also maximizes flash writes — the resource the
// wear results (Table 5) show is the scarce one. An AdmissionPolicy sits in
// front of every cache insertion and may demote it to disk-only
// pass-through: the request still completes (the data lands on disk and any
// stale cached copy is evicted), the flash page write simply never happens.
//
// Determinism contract: a policy instance is owned by exactly one shard and
// is only driven from that shard's sequential operation stream, so — like
// every other per-shard structure — its decisions and counters are
// bit-identical no matter how many replay threads drive the system. Policies
// must not consult wall-clock time or unseeded randomness; the
// WriteRateLimiter reads its shard's *virtual* clock.
//
// Memory contract: all policy state lives in structures with a fixed
// configured ceiling (GhostTable capacity, sketch width). MemoryUsage() must
// never exceed MemoryBound(); InvariantChecker::CheckPolicy audits this, and
// also that every LBN in the recent-rejects window is absent from the SSC.

#ifndef FLASHTIER_POLICY_ADMISSION_POLICY_H_
#define FLASHTIER_POLICY_ADMISSION_POLICY_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "src/flash/types.h"
#include "src/policy/ghost_table.h"

namespace flashtier {

// The kind of cache insertion a manager is asking about.
enum class AdmissionOp : uint8_t {
  kReadFill,    // populate on a read miss (clean fill of disk data)
  kWriteClean,  // write-through insertion of host data
  kWriteDirty,  // write-back allocation of host data
};

struct AdmissionContext {
  // Best-effort "the manager believes this block is already cached": the
  // write-back manager knows its dirty-resident blocks, the native manager
  // its table hits; the write-through manager keeps no host state and always
  // reports false. Overwrites of resident data are usually worth admitting —
  // rejecting one forces an eviction of the cached copy.
  bool resident = false;
};

struct PolicyStats {
  uint64_t admits = 0;        // insertions the policy let into flash
  uint64_t rejects = 0;       // insertions demoted to disk-only pass-through
  uint64_t ghost_hits = 0;    // admissions earned by ghost/sketch history
  // Read misses on recently rejected blocks — each one is a hit the policy
  // traded away ("regret"); the window is the bounded recent-rejects table.
  uint64_t rejected_then_remissed = 0;
  uint64_t flash_writes_saved = 0;  // page writes the rejects avoided

  void Merge(const PolicyStats& o) {
    admits += o.admits;
    rejects += o.rejects;
    ghost_hits += o.ghost_hits;
    rejected_then_remissed += o.rejected_then_remissed;
    flash_writes_saved += o.flash_writes_saved;
  }
};

class AdmissionPolicy {
 public:
  explicit AdmissionPolicy(size_t reject_ghost_entries)
      : reject_ghost_(reject_ghost_entries) {}
  virtual ~AdmissionPolicy() = default;

  // The decision. Detects regret (a read miss on a recently rejected block
  // would have been a hit had the block been admitted) before delegating to
  // the policy's Decide().
  bool ShouldAdmit(Lbn lbn, AdmissionOp op, const AdmissionContext& ctx) {
    if (op == AdmissionOp::kReadFill && reject_ghost_.Contains(lbn)) {
      ++stats_.rejected_then_remissed;
    }
    return Decide(lbn, op, ctx);
  }

  // Managers call this at the top of every application read/write — hit or
  // miss — so frequency-tracking policies see the full reference stream.
  virtual void OnAccess(Lbn lbn, bool is_write) {
    (void)lbn;
    (void)is_write;
  }

  // Managers call this when they evict a block (explicit eviction or LRU
  // replacement). Silent evictions inside the SSC are not visible here.
  virtual void OnEvict(Lbn lbn) { (void)lbn; }

  // Managers call exactly one of these after acting on a ShouldAdmit answer:
  // OnAdmit once the insertion completed, OnReject once the bypass did.
  void OnAdmit(Lbn lbn) {
    ++stats_.admits;
    reject_ghost_.Erase(lbn);
  }
  void OnReject(Lbn lbn) {
    ++stats_.rejects;
    ++stats_.flash_writes_saved;
    reject_ghost_.Touch(lbn);
  }

  virtual std::string_view name() const = 0;

  // Actual bytes of policy state vs. the configured ceiling (audited).
  virtual size_t MemoryUsage() const { return reject_ghost_.MemoryUsage(); }
  virtual size_t MemoryBound() const { return reject_ghost_.MemoryBound(); }

  const PolicyStats& stats() const { return stats_; }
  // Recently rejected LBNs: the regret window, and the set the
  // rejected-block-absent audit checks against the SSC.
  const GhostTable& recent_rejects() const { return reject_ghost_; }

 protected:
  virtual bool Decide(Lbn lbn, AdmissionOp op, const AdmissionContext& ctx) = 0;

  PolicyStats stats_;
  GhostTable reject_ghost_;
};

// The default: admit everything. Behaviour (and every virtual-time metric)
// is bit-identical to running with no policy at all — the decision touches
// no device state and charges no time.
class AdmitAllPolicy final : public AdmissionPolicy {
 public:
  explicit AdmitAllPolicy(size_t reject_ghost_entries)
      : AdmissionPolicy(reject_ghost_entries) {}

  std::string_view name() const override { return "admit-all"; }

 protected:
  bool Decide(Lbn, AdmissionOp, const AdmissionContext&) override { return true; }
};

}  // namespace flashtier

#endif  // FLASHTIER_POLICY_ADMISSION_POLICY_H_
