#include "src/policy/policy_factory.h"

#include <algorithm>
#include <cassert>

#include "src/policy/frequency_sketch.h"
#include "src/policy/ghost_lru.h"
#include "src/policy/write_rate_limiter.h"

namespace flashtier {

const char* AdmissionKindName(AdmissionKind kind) {
  switch (kind) {
    case AdmissionKind::kAdmitAll:
      return "admit-all";
    case AdmissionKind::kGhostLru:
      return "ghost-lru";
    case AdmissionKind::kFrequencySketch:
      return "freq-sketch";
    case AdmissionKind::kWriteRateLimiter:
      return "write-limit";
  }
  return "unknown";
}

bool ParseAdmissionKind(const std::string& name, AdmissionKind* out) {
  if (name == "admit-all") {
    *out = AdmissionKind::kAdmitAll;
  } else if (name == "ghost-lru") {
    *out = AdmissionKind::kGhostLru;
  } else if (name == "freq-sketch") {
    *out = AdmissionKind::kFrequencySketch;
  } else if (name == "write-limit") {
    *out = AdmissionKind::kWriteRateLimiter;
  } else {
    return false;
  }
  return true;
}

const char* KnownAdmissionNames() {
  return "admit-all, ghost-lru, freq-sketch, write-limit";
}

std::unique_ptr<AdmissionPolicy> MakeAdmissionPolicy(const PolicyConfig& config,
                                                     const SimClock* clock) {
  switch (config.kind) {
    case AdmissionKind::kAdmitAll:
      return std::make_unique<AdmitAllPolicy>(config.reject_ghost_entries);
    case AdmissionKind::kGhostLru: {
      GhostLruPolicy::Options opts;
      opts.ghost_entries = config.ghost_entries;
      opts.required_misses = config.ghost_required_misses;
      return std::make_unique<GhostLruPolicy>(opts, config.reject_ghost_entries);
    }
    case AdmissionKind::kFrequencySketch: {
      FrequencySketchPolicy::Options opts;
      opts.width = config.sketch_width;
      opts.rows = config.sketch_rows;
      opts.admit_threshold = config.sketch_threshold;
      opts.halve_interval = config.sketch_halve_interval;
      opts.seed = config.seed;
      return std::make_unique<FrequencySketchPolicy>(opts, config.reject_ghost_entries);
    }
    case AdmissionKind::kWriteRateLimiter: {
      assert(clock != nullptr);
      WriteRateLimiterPolicy::Options opts;
      opts.rate_pages_per_sec = config.write_rate_pages_per_sec;
      opts.burst_pages = config.write_burst_pages;
      return std::make_unique<WriteRateLimiterPolicy>(opts, clock,
                                                      config.reject_ghost_entries);
    }
  }
  return std::make_unique<AdmitAllPolicy>(config.reject_ghost_entries);
}

PolicyConfig ShardPolicyConfig(const PolicyConfig& config, uint32_t shards,
                               uint32_t shard_index) {
  PolicyConfig out = config;
  const uint32_t n = std::max<uint32_t>(1, shards);
  out.reject_ghost_entries = std::max<uint32_t>(64, config.reject_ghost_entries / n);
  out.ghost_entries = std::max<uint32_t>(64, config.ghost_entries / n);
  out.sketch_width = std::max<uint32_t>(1024, config.sketch_width / n);
  out.write_rate_pages_per_sec = config.write_rate_pages_per_sec / n;
  out.write_burst_pages = std::max(1.0, config.write_burst_pages / n);
  out.seed = config.seed + 0x9e3779b97f4a7c15ull * shard_index;
  return out;
}

}  // namespace flashtier
