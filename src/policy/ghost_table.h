// Bounded LRU table of LBN -> small counter, the building block of the
// admission policies: GhostLru keeps recently *missed* blocks in one to count
// re-misses, and every policy keeps recently *rejected* blocks in one so the
// regret counter (and the rejected-block-absent audit) has a window to look
// at. The table is deterministic — iteration order is recency order — and its
// memory is strictly bounded: at `capacity` entries the LRU entry is evicted
// before a new one is inserted.

#ifndef FLASHTIER_POLICY_GHOST_TABLE_H_
#define FLASHTIER_POLICY_GHOST_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>

#include "src/flash/types.h"

namespace flashtier {

class GhostTable {
 public:
  explicit GhostTable(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  // Bumps `lbn` to most-recently-used and increments its counter (inserting
  // it at 1), evicting the least-recently-used entry when the table is full.
  // Returns the counter after the increment.
  uint32_t Touch(Lbn lbn) {
    auto it = index_.find(lbn);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return ++it->second->count;
    }
    if (lru_.size() >= capacity_) {
      index_.erase(lru_.back().lbn);
      lru_.pop_back();
    }
    lru_.push_front(Node{lbn, 1});
    index_[lbn] = lru_.begin();
    return 1;
  }

  bool Contains(Lbn lbn) const { return index_.count(lbn) != 0; }

  uint32_t Count(Lbn lbn) const {
    const auto it = index_.find(lbn);
    return it == index_.end() ? 0 : it->second->count;
  }

  void Erase(Lbn lbn) {
    auto it = index_.find(lbn);
    if (it != index_.end()) {
      lru_.erase(it->second);
      index_.erase(it);
    }
  }

  size_t size() const { return lru_.size(); }
  size_t capacity() const { return capacity_; }

  // Visits (lbn, count) in recency order, most recent first.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Node& node : lru_) {
      fn(node.lbn, node.count);
    }
  }

  // Modeled bytes per entry: the node payload plus list links and one hash
  // bucket slot. A fixed constant so MemoryBound is a hard capacity * entry
  // ceiling independent of allocator behaviour.
  static constexpr size_t kEntryBytes =
      sizeof(Lbn) + sizeof(uint32_t) + 4 * sizeof(void*);

  size_t MemoryUsage() const { return lru_.size() * kEntryBytes; }
  size_t MemoryBound() const { return capacity_ * kEntryBytes; }

 private:
  struct Node {
    Lbn lbn;
    uint32_t count;
  };

  size_t capacity_;
  std::list<Node> lru_;  // front = most recently used
  std::unordered_map<Lbn, std::list<Node>::iterator> index_;
};

}  // namespace flashtier

#endif  // FLASHTIER_POLICY_GHOST_TABLE_H_
