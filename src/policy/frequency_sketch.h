// Frequency-sketch admission: a Flashield-style "flashiness" proxy. Every
// access increments a block's counters in a seeded count-min sketch; an
// insertion is admitted only when the sketch's estimate of the block's
// recent access count clears a threshold. All counters are halved every
// `halve_interval` accesses so the estimate tracks *recent* frequency — old
// popularity decays instead of accumulating forever.
//
// The sketch is a fixed rows x width array of 8-bit saturating counters, so
// its memory is a configuration constant and its behaviour is a pure
// function of the (seeded) access sequence.

#ifndef FLASHTIER_POLICY_FREQUENCY_SKETCH_H_
#define FLASHTIER_POLICY_FREQUENCY_SKETCH_H_

#include <vector>

#include "src/policy/admission_policy.h"

namespace flashtier {

class FrequencySketchPolicy final : public AdmissionPolicy {
 public:
  struct Options {
    uint32_t width = 16384;     // counters per row; rounded up to a power of two
    uint32_t rows = 4;
    uint32_t admit_threshold = 2;  // estimated accesses needed to admit
    // Accesses between halvings; 0 picks 8x the (rounded) width, i.e. the
    // aging window scales with the sketch.
    uint64_t halve_interval = 0;
    uint64_t seed = 1;
  };

  FrequencySketchPolicy(const Options& options, size_t reject_ghost_entries);

  std::string_view name() const override { return "freq-sketch"; }

  void OnAccess(Lbn lbn, bool is_write) override;

  // Min over the block's row counters (the count-min estimate).
  uint32_t Estimate(Lbn lbn) const;

  size_t MemoryUsage() const override {
    return counters_.size() * sizeof(uint8_t) + AdmissionPolicy::MemoryUsage();
  }
  size_t MemoryBound() const override {
    return counters_.size() * sizeof(uint8_t) + AdmissionPolicy::MemoryBound();
  }

  uint64_t halvings() const { return halvings_; }

 protected:
  bool Decide(Lbn lbn, AdmissionOp, const AdmissionContext& ctx) override {
    if (ctx.resident) {
      return true;
    }
    if (Estimate(lbn) >= threshold_) {
      ++stats_.ghost_hits;
      return true;
    }
    return false;
  }

 private:
  size_t IndexOf(uint32_t row, Lbn lbn) const;

  uint32_t width_;  // power of two
  uint32_t rows_;
  uint32_t threshold_;
  uint64_t halve_interval_;
  std::vector<uint64_t> row_seeds_;
  std::vector<uint8_t> counters_;  // rows_ x width_
  uint64_t accesses_ = 0;
  uint64_t halvings_ = 0;
};

}  // namespace flashtier

#endif  // FLASHTIER_POLICY_FREQUENCY_SKETCH_H_
