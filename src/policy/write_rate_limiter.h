// WLFC-style write economy: a token bucket on flash-write bandwidth, driven
// by the shard's *virtual* clock. Each admitted insertion costs one token;
// tokens refill at `rate_pages_per_sec` of simulated time up to
// `burst_pages`. When the bucket is empty the insertion is demoted to
// disk-only pass-through — the cache takes write traffic only as fast as the
// configured flash-write budget allows, and bursts beyond it go around the
// cache instead of wearing it out.
//
// Using virtual time (never wall-clock time) keeps the limiter deterministic:
// the refill sequence is a pure function of the shard's operation stream, so
// parallel replay stays bit-identical across thread counts.

#ifndef FLASHTIER_POLICY_WRITE_RATE_LIMITER_H_
#define FLASHTIER_POLICY_WRITE_RATE_LIMITER_H_

#include "src/flash/timing.h"
#include "src/policy/admission_policy.h"

namespace flashtier {

class WriteRateLimiterPolicy final : public AdmissionPolicy {
 public:
  struct Options {
    double rate_pages_per_sec = 2000.0;  // sustained flash-write budget
    double burst_pages = 256.0;          // bucket depth
  };

  WriteRateLimiterPolicy(const Options& options, const SimClock* clock,
                         size_t reject_ghost_entries)
      : AdmissionPolicy(reject_ghost_entries),
        clock_(clock),
        rate_per_us_(options.rate_pages_per_sec / 1e6),
        burst_(options.burst_pages < 1.0 ? 1.0 : options.burst_pages),
        tokens_(burst_) {}

  std::string_view name() const override { return "write-limit"; }

  double tokens() const { return tokens_; }

 protected:
  bool Decide(Lbn, AdmissionOp, const AdmissionContext&) override {
    Refill();
    if (tokens_ >= 1.0) {
      tokens_ -= 1.0;
      return true;
    }
    return false;
  }

 private:
  void Refill() {
    const uint64_t now = clock_->now_us();
    if (now > last_refill_us_) {
      tokens_ += static_cast<double>(now - last_refill_us_) * rate_per_us_;
      if (tokens_ > burst_) {
        tokens_ = burst_;
      }
      last_refill_us_ = now;
    }
  }

  const SimClock* clock_;
  double rate_per_us_;
  double burst_;
  double tokens_;
  uint64_t last_refill_us_ = 0;
};

}  // namespace flashtier

#endif  // FLASHTIER_POLICY_WRITE_RATE_LIMITER_H_
