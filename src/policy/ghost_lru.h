// Second-hit admission: a block enters the cache only on its K-th miss
// within a bounded LRU window of recently-missed LBNs (the "ghost" cache —
// metadata-only, no data). Single-touch cold tails (most prominent in the
// usr/proj traces) never earn a flash write; anything re-referenced within
// the window is admitted on its second miss.

#ifndef FLASHTIER_POLICY_GHOST_LRU_H_
#define FLASHTIER_POLICY_GHOST_LRU_H_

#include "src/policy/admission_policy.h"

namespace flashtier {

class GhostLruPolicy final : public AdmissionPolicy {
 public:
  struct Options {
    size_t ghost_entries = 16384;      // window of recently missed LBNs
    uint32_t required_misses = 2;      // admit on the K-th miss
  };

  GhostLruPolicy(const Options& options, size_t reject_ghost_entries)
      : AdmissionPolicy(reject_ghost_entries),
        ghost_(options.ghost_entries),
        required_misses_(options.required_misses == 0 ? 1 : options.required_misses) {}

  std::string_view name() const override { return "ghost-lru"; }

  size_t MemoryUsage() const override {
    return ghost_.MemoryUsage() + AdmissionPolicy::MemoryUsage();
  }
  size_t MemoryBound() const override {
    return ghost_.MemoryBound() + AdmissionPolicy::MemoryBound();
  }

  const GhostTable& ghost() const { return ghost_; }

 protected:
  bool Decide(Lbn lbn, AdmissionOp, const AdmissionContext& ctx) override {
    if (ctx.resident) {
      return true;  // overwrites of cached data keep their slot
    }
    if (ghost_.Touch(lbn) >= required_misses_) {
      ++stats_.ghost_hits;
      ghost_.Erase(lbn);  // admitted: the history has served its purpose
      return true;
    }
    return false;
  }

 private:
  GhostTable ghost_;
  uint32_t required_misses_;
};

}  // namespace flashtier

#endif  // FLASHTIER_POLICY_GHOST_LRU_H_
