// Synthetic workload generation matched to the paper's four traces.
//
// The paper replays FIU traces (homes, mail) and MSR-Cambridge traces (usr,
// proj). Those traces are not shipped here, so we synthesize streams that
// reproduce their first-order statistics, which are what the experiments
// depend on:
//   * Table 3: address range, unique block count, op count, write fraction;
//   * Figure 1: sparse placement of the working set across 100,000-block
//     regions (Zipf-weighted region popularity, sequential allocation runs);
//   * high re-reference skew: top-25% most-accessed blocks absorb ~90% of
//     accesses (consistent with the paper's ~10-16% miss rates for caches
//     sized at 25% of the working set), via Zipf popularity over the hot set;
//   * a cold single-touch tail (most prominent in usr/proj) modelled as an
//     interleaved scan over never-before-seen blocks;
//   * short sequential runs, which the write-back manager's contiguous
//     cleaning optimization depends on.
//
// Generation is fully deterministic given the profile's seed.

#ifndef FLASHTIER_TRACE_WORKLOAD_H_
#define FLASHTIER_TRACE_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/trace/kv_trace.h"
#include "src/trace/trace.h"
#include "src/util/rng.h"

namespace flashtier {

// Region granularity used by Figure 1 and the generator's placement step.
inline constexpr uint64_t kRegionBlocks = 100'000;

struct WorkloadProfile {
  std::string name;
  uint64_t range_blocks = 0;    // size of the disk address space, 4 KB blocks
  uint64_t unique_blocks = 0;   // target working-set size of the generated stream
  // Unique blocks of the *full* trace (>= unique_blocks when only a prefix is
  // replayed). The paper sizes caches as 25% of this (Section 6.1), so mail/
  // usr/proj caches are large relative to their replayed prefixes.
  uint64_t full_unique_blocks = 0;
  uint64_t total_ops = 0;
  double write_fraction = 0.5;
  double hot_zipf_s = 1.05;     // popularity skew over the hot set
  double region_zipf_s = 1.20;  // skew of working-set placement over regions
  double seq_prob = 0.5;        // probability a request extends a run
  double cold_fraction = 0.10;  // fraction of unique blocks that are
                                // single-touch cold tail
  // Mean length (blocks) of the contiguous runs the *cold tail* of the
  // working set is allocated in (scattered small files).
  uint32_t alloc_run_blocks = 48;
  // Mean length of the runs the *hot set* is allocated in. Hot data is
  // strongly clustered — large active files (mailboxes, project trees) whose
  // regions Figure 1 shows with 10^4-10^5 accesses — which is what makes
  // 256 KB block-level mapping viable for a cache: the cacheable hot blocks
  // occupy few, dense erase-block regions.
  uint32_t hot_run_blocks = 384;
  // Mean length (blocks) of a sequential access burst within a run.
  uint32_t access_run_blocks = 16;
  // Reads are confined to the top 1/read_concentration of hot runs (1 = reads
  // and writes share one popularity distribution). Write-dominated server
  // traces read from a small stable set while writes spray much wider, which
  // is why their read miss rates stay low under heavy write churn.
  uint32_t read_concentration = 1;
  // Probability that a read targets a recently-written block. Traces taken
  // below an active page cache show strong read-after-write locality: a read
  // only reaches the storage tier shortly after the written data was pushed
  // out, so it lands on blocks still hot in the device.
  double read_recency = 0.0;
  uint64_t seed = 42;

  uint64_t RangeBytes() const { return range_blocks * 4096; }
};

// The four paper workloads (Table 3), linearly scaled. scale=1.0 reproduces
// the paper's replayed sizes; the default benches use the per-workload
// defaults in bench/ (~10x smaller) to keep runs minutes-long.
WorkloadProfile HomesProfile(double scale);
WorkloadProfile MailProfile(double scale);
WorkloadProfile UsrProfile(double scale);
WorkloadProfile ProjProfile(double scale);
std::vector<WorkloadProfile> AllProfiles(double scale);

// Deterministic synthetic trace stream for a profile.
class SyntheticWorkload final : public TraceSource {
 public:
  explicit SyntheticWorkload(const WorkloadProfile& profile);

  bool Next(TraceRecord* record) override;
  void Rewind() override;
  uint64_t size_hint() const override { return profile_.total_ops; }

  const WorkloadProfile& profile() const { return profile_; }

  // The generated working set (hot blocks first, then the cold tail).
  const std::vector<Lbn>& working_set() const { return blocks_; }
  size_t hot_count() const { return hot_count_; }

 private:
  void BuildWorkingSet();
  // Picks a hot block: Zipf-popular *run*, uniform position within it.
  // Temporal popularity is spatially correlated (hot files are hot in their
  // entirety), which is what lets block-granularity mapping cache densely.
  size_t SampleHotIndex(bool is_write);

  WorkloadProfile profile_;
  Rng rng_;

  std::vector<Lbn> blocks_;  // [0, hot_count_) hot, [hot_count_, N) cold
  std::vector<size_t> run_starts_;  // index into blocks_ of each run start
  std::unordered_set<Lbn> allocated_;
  size_t hot_count_ = 0;
  size_t hot_runs_ = 0;
  std::unique_ptr<ZipfSampler> run_sampler_;

  // Stream state (reset by Rewind).
  uint64_t emitted_ = 0;
  size_t next_cold_ = 0;
  double cold_prob_ = 0.0;
  Lbn run_next_ = kInvalidLbn;
  uint32_t run_remaining_ = 0;
  bool run_is_write_ = false;
  std::vector<Lbn> recent_writes_;  // ring buffer for read-after-write locality
  size_t recent_pos_ = 0;
};

// ---------------------------------------------------------------------------
// Tiny-object KV workloads (DESIGN.md §5k)
// ---------------------------------------------------------------------------

// The kv-zipf workload models a memcached/CDN-style object tier: Zipf key
// popularity (the YCSB default skew), a fixed get/set/delete mix, and
// per-key object sizes drawn once from a power-of-two size-class
// distribution skewed toward small objects (Nemo's tiny-object regime).
struct KvWorkloadProfile {
  std::string name = "kv-zipf";
  uint64_t unique_keys = 20'000;
  uint64_t total_ops = 200'000;
  double key_zipf_s = 0.99;     // key-popularity skew
  double get_fraction = 0.60;   // remainder is sets, minus deletes
  double delete_fraction = 0.05;
  uint32_t min_size = kKvMinObjectBytes;  // object-size bounds, bytes
  uint32_t max_size = 1024;
  double size_zipf_s = 1.10;    // skew over power-of-two size classes
  uint64_t seed = 42;
};

// Deterministic synthetic KV trace stream. Each key's size is fixed at
// construction (the same object re-set keeps its size); sets of a key always
// carry that size.
class KvZipfWorkload final : public KvTraceSource {
 public:
  explicit KvZipfWorkload(const KvWorkloadProfile& profile);

  bool Next(KvTraceRecord* record) override;
  void Rewind() override;
  uint64_t size_hint() const override { return profile_.total_ops; }

  const KvWorkloadProfile& profile() const { return profile_; }
  uint32_t SizeOfKeyIndex(uint64_t index) const { return sizes_[index]; }

 private:
  KvWorkloadProfile profile_;
  Rng rng_;
  std::vector<uint32_t> sizes_;  // per-key object size, indexed by key rank
  std::unique_ptr<ZipfSampler> key_sampler_;
  uint64_t emitted_ = 0;
};

}  // namespace flashtier

#endif  // FLASHTIER_TRACE_WORKLOAD_H_
