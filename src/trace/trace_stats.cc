#include "src/trace/trace_stats.h"

#include <algorithm>

#include "src/trace/workload.h"  // kRegionBlocks

namespace flashtier {

void TraceStats::Add(const TraceRecord& record) {
  ++total_ops_;
  BlockCount& c = counts_[record.lbn];
  if (c.accesses != 0) {
    // Interval since this block's previous access, in trace records
    // (>= 1; consecutive accesses to the same block land in bucket 0).
    const uint64_t interval = total_ops_ - c.last_seen;
    size_t bucket = 0;
    while ((interval >> (bucket + 1)) != 0) {
      ++bucket;
    }
    if (reref_hist_.size() <= bucket) {
      reref_hist_.resize(bucket + 1, 0);
    }
    ++reref_hist_[bucket];
    ++reref_accesses_;
  }
  c.last_seen = total_ops_;
  ++c.accesses;
  if (record.op == TraceOp::kWrite) {
    ++writes_;
    ++c.writes;
  }
  max_lbn_ = std::max(max_lbn_, record.lbn);
}

void TraceStats::Consume(TraceSource& source) {
  TraceRecord r;
  while (source.Next(&r)) {
    Add(r);
  }
  source.Rewind();
}

namespace {

// Access-count threshold that keeps ~top_fraction of blocks; blocks at the
// threshold are included.
uint64_t ThresholdFor(const std::vector<uint64_t>& sorted_desc, double top_fraction) {
  if (sorted_desc.empty()) {
    return 0;
  }
  auto keep = static_cast<size_t>(static_cast<double>(sorted_desc.size()) * top_fraction);
  if (keep == 0) {
    keep = 1;
  }
  if (keep > sorted_desc.size()) {
    keep = sorted_desc.size();
  }
  return sorted_desc[keep - 1];
}

}  // namespace

double TraceStats::MeanAccessesPerBlock(double top_fraction) const {
  std::vector<uint64_t> acc;
  acc.reserve(counts_.size());
  for (const auto& [lbn, c] : counts_) {
    acc.push_back(c.accesses);
  }
  std::sort(acc.begin(), acc.end(), std::greater<>());
  const auto keep = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(acc.size()) * top_fraction));
  uint64_t sum = 0;
  for (size_t i = 0; i < keep && i < acc.size(); ++i) {
    sum += acc[i];
  }
  return static_cast<double>(sum) / static_cast<double>(std::min(keep, acc.size()));
}

double TraceStats::MeanWritesPerBlock(double top_fraction) const {
  // Rank blocks by total accesses (cache residency proxy), then average their
  // write counts — mirroring Section 2's "writes per block of the top 25%".
  std::vector<std::pair<uint64_t, uint64_t>> rows;  // (accesses, writes)
  rows.reserve(counts_.size());
  for (const auto& [lbn, c] : counts_) {
    rows.emplace_back(c.accesses, c.writes);
  }
  std::sort(rows.begin(), rows.end(), std::greater<>());
  const auto keep = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(rows.size()) * top_fraction));
  uint64_t sum = 0;
  for (size_t i = 0; i < keep && i < rows.size(); ++i) {
    sum += rows[i].second;
  }
  return static_cast<double>(sum) / static_cast<double>(std::min(keep, rows.size()));
}

std::vector<Lbn> TraceStats::TopBlocks(double top_fraction) const {
  std::vector<std::pair<uint64_t, Lbn>> rows;
  rows.reserve(counts_.size());
  for (const auto& [lbn, c] : counts_) {
    rows.emplace_back(c.accesses, lbn);
  }
  std::sort(rows.begin(), rows.end(), std::greater<>());
  const auto keep = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(rows.size()) * top_fraction));
  std::vector<Lbn> out;
  out.reserve(keep);
  for (size_t i = 0; i < keep && i < rows.size(); ++i) {
    out.push_back(rows[i].second);
  }
  return out;
}

std::vector<uint64_t> TraceStats::RegionDensities(double top_fraction) const {
  std::vector<uint64_t> acc;
  acc.reserve(counts_.size());
  for (const auto& [lbn, c] : counts_) {
    acc.push_back(c.accesses);
  }
  std::sort(acc.begin(), acc.end(), std::greater<>());
  const uint64_t threshold = ThresholdFor(acc, top_fraction);

  std::unordered_map<uint64_t, uint64_t> per_region;
  for (const auto& [lbn, c] : counts_) {
    if (c.accesses >= threshold) {
      ++per_region[lbn / kRegionBlocks];
    }
  }
  std::vector<uint64_t> densities;
  densities.reserve(per_region.size());
  // flashlint: allow(unordered-iter): values are sorted below, order-free
  for (const auto& [region, n] : per_region) {
    densities.push_back(n);
  }
  std::sort(densities.begin(), densities.end());
  return densities;
}

uint64_t TraceStats::SingleAccessBlocks() const {
  uint64_t n = 0;
  for (const auto& [lbn, c] : counts_) {
    if (c.accesses == 1) {
      ++n;
    }
  }
  return n;
}

void KvTraceStats::Add(const KvTraceRecord& record) {
  ++total_ops_;
  KeyCount& c = counts_[record.key];
  if (c.accesses != 0) {
    const uint64_t interval = total_ops_ - c.last_seen;
    size_t bucket = 0;
    while ((interval >> (bucket + 1)) != 0) {
      ++bucket;
    }
    if (reref_hist_.size() <= bucket) {
      reref_hist_.resize(bucket + 1, 0);
    }
    ++reref_hist_[bucket];
    ++reref_accesses_;
  }
  c.last_seen = total_ops_;
  ++c.accesses;
  switch (record.op) {
    case KvOp::kGet:
      ++gets_;
      break;
    case KvOp::kSet: {
      ++sets_;
      set_bytes_ += record.size;
      size_t bucket = 0;
      while ((static_cast<uint64_t>(record.size) >> (bucket + 1)) != 0) {
        ++bucket;
      }
      if (size_hist_.size() <= bucket) {
        size_hist_.resize(bucket + 1, 0);
      }
      ++size_hist_[bucket];
      break;
    }
    case KvOp::kDelete:
      ++deletes_;
      break;
  }
}

void KvTraceStats::Consume(KvTraceSource& source) {
  KvTraceRecord r;
  while (source.Next(&r)) {
    Add(r);
  }
  source.Rewind();
}

uint64_t KvTraceStats::SingleAccessKeys() const {
  uint64_t n = 0;
  for (const auto& [key, c] : counts_) {
    if (c.accesses == 1) {
      ++n;
    }
  }
  return n;
}

double TraceStats::FractionOfRegionsBelow(double top_fraction, double percent_of_region) const {
  const std::vector<uint64_t> densities = RegionDensities(top_fraction);
  if (densities.empty()) {
    return 0.0;
  }
  const auto cutoff =
      static_cast<uint64_t>(percent_of_region / 100.0 * static_cast<double>(kRegionBlocks));
  size_t below = 0;
  for (uint64_t d : densities) {
    if (d < cutoff) {
      ++below;
    }
  }
  return static_cast<double>(below) / static_cast<double>(densities.size());
}

}  // namespace flashtier
