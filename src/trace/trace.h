// Block-level I/O trace records and sources.
//
// All four paper workloads (Table 3) are sector-aligned 4,096-byte requests,
// so a record is just an LBN plus a read/write flag. Traces are consumed
// through the TraceSource interface so the replay engine works identically
// over synthetic generators, in-memory vectors, and binary trace files.

#ifndef FLASHTIER_TRACE_TRACE_H_
#define FLASHTIER_TRACE_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/flash/types.h"

namespace flashtier {

enum class TraceOp : uint8_t { kRead = 0, kWrite = 1 };

struct TraceRecord {
  Lbn lbn = 0;
  TraceOp op = TraceOp::kRead;

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

// Pull-based trace stream. Implementations must be deterministic: two
// iterations of a freshly-constructed source yield identical streams.
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  // Fetches the next record; returns false at end of stream.
  virtual bool Next(TraceRecord* record) = 0;

  // Restarts the stream from the beginning.
  virtual void Rewind() = 0;

  // Total records the stream will produce, if known (0 = unknown).
  virtual uint64_t size_hint() const { return 0; }
};

// Trivial in-memory trace, mainly for tests.
class VectorTrace final : public TraceSource {
 public:
  VectorTrace() = default;
  explicit VectorTrace(std::vector<TraceRecord> records) : records_(std::move(records)) {}

  void Append(Lbn lbn, TraceOp op) { records_.push_back({lbn, op}); }

  bool Next(TraceRecord* record) override {
    if (pos_ >= records_.size()) {
      return false;
    }
    *record = records_[pos_++];
    return true;
  }

  void Rewind() override { pos_ = 0; }
  uint64_t size_hint() const override { return records_.size(); }

  const std::vector<TraceRecord>& records() const { return records_; }

 private:
  std::vector<TraceRecord> records_;
  size_t pos_ = 0;
};

}  // namespace flashtier

#endif  // FLASHTIER_TRACE_TRACE_H_
