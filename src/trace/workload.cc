#include "src/trace/workload.h"

#include <algorithm>
#include <cmath>

#include "src/sparsemap/sparse_hash_map.h"  // for MixHash64

namespace flashtier {
namespace {

constexpr uint64_t kBlocksPerGb = (uint64_t{1} << 30) / 4096;

uint64_t Scaled(uint64_t v, double scale) {
  const auto s = static_cast<uint64_t>(static_cast<double>(v) * scale);
  return s == 0 ? 1 : s;
}

}  // namespace

// Table 3 figures; unique counts for mail/usr/proj are adjusted to the
// replayed prefix the paper actually measures (Section 6.1 replays 20M mail
// ops and 100M usr/proj ops). See EXPERIMENTS.md for the derivation.
WorkloadProfile HomesProfile(double scale) {
  WorkloadProfile p;
  p.name = "homes";
  p.range_blocks = Scaled(532 * kBlocksPerGb, scale);
  p.unique_blocks = Scaled(1'684'407, scale);
  p.full_unique_blocks = p.unique_blocks;  // the whole trace is replayed
  p.total_ops = Scaled(17'836'701, scale);
  p.write_fraction = 0.959;
  p.hot_zipf_s = 1.10;
  p.region_zipf_s = 1.25;
  p.seq_prob = 0.60;
  p.cold_fraction = 0.25;
  p.alloc_run_blocks = 16;
  p.hot_run_blocks = 128;
  p.access_run_blocks = 48;
  p.read_concentration = 6;
  p.read_recency = 0.85;
  p.seed = 1001;
  return p;
}

WorkloadProfile MailProfile(double scale) {
  WorkloadProfile p;
  p.name = "mail";
  p.range_blocks = Scaled(277 * kBlocksPerGb, scale);
  p.unique_blocks = Scaled(1'500'000, scale);  // unique blocks in the 20M-op replayed prefix
  p.full_unique_blocks = Scaled(15'136'141, scale);  // Table 3, full trace
  p.total_ops = Scaled(20'000'000, scale);
  p.write_fraction = 0.885;
  p.hot_zipf_s = 1.10;
  p.region_zipf_s = 1.25;
  p.seq_prob = 0.30;
  p.cold_fraction = 0.20;
  p.alloc_run_blocks = 16;
  p.hot_run_blocks = 32;
  p.access_run_blocks = 12;
  p.read_concentration = 3;
  p.read_recency = 0.5;
  p.seed = 1002;
  return p;
}

WorkloadProfile UsrProfile(double scale) {
  WorkloadProfile p;
  p.name = "usr";
  p.range_blocks = Scaled(530 * kBlocksPerGb, scale);
  p.unique_blocks = Scaled(40'000'000, scale);  // reused working set of the prefix
  p.full_unique_blocks = Scaled(99'450'142, scale);  // Table 3, full trace
  p.total_ops = Scaled(100'000'000, scale);
  p.write_fraction = 0.059;
  p.hot_zipf_s = 1.05;
  p.region_zipf_s = 1.15;
  p.seq_prob = 0.60;
  p.cold_fraction = 0.35;
  p.alloc_run_blocks = 32;
  p.hot_run_blocks = 128;
  p.access_run_blocks = 24;
  p.read_recency = 0.2;
  p.seed = 1003;
  return p;
}

WorkloadProfile ProjProfile(double scale) {
  WorkloadProfile p;
  p.name = "proj";
  p.range_blocks = Scaled(816 * kBlocksPerGb, scale);
  p.unique_blocks = Scaled(30'000'000, scale);  // reused working set of the prefix
  p.full_unique_blocks = Scaled(107'509'907, scale);  // Table 3, full trace
  p.total_ops = Scaled(100'000'000, scale);
  p.write_fraction = 0.142;
  p.hot_zipf_s = 1.05;
  p.region_zipf_s = 1.15;
  p.seq_prob = 0.60;
  p.cold_fraction = 0.30;
  p.alloc_run_blocks = 32;
  p.hot_run_blocks = 128;
  p.access_run_blocks = 24;
  p.read_recency = 0.2;
  p.seed = 1004;
  return p;
}

std::vector<WorkloadProfile> AllProfiles(double scale) {
  return {HomesProfile(scale), MailProfile(scale), UsrProfile(scale), ProjProfile(scale)};
}

SyntheticWorkload::SyntheticWorkload(const WorkloadProfile& profile)
    : profile_(profile), rng_(profile.seed ^ 0xf00dull) {
  BuildWorkingSet();
  Rewind();
}

void SyntheticWorkload::BuildWorkingSet() {
  Rng build_rng(profile_.seed);
  const uint64_t regions = std::max<uint64_t>(1, profile_.range_blocks / kRegionBlocks);
  ZipfSampler region_sampler(regions, profile_.region_zipf_s);

  const uint64_t target = std::min(profile_.unique_blocks, profile_.range_blocks);
  const auto cold_target =
      static_cast<uint64_t>(static_cast<double>(target) * profile_.cold_fraction);
  const uint64_t hot_target = target - cold_target;
  blocks_.reserve(target);
  allocated_.reserve(target * 2);
  std::vector<std::pair<size_t, size_t>> runs;  // (first index, count) in blocks_

  // Allocates contiguous runs into Zipf-popular regions until blocks_ holds
  // `goal` blocks; falls back to a linear scan if the favoured regions
  // saturate (usr/proj cover ~40-60% of their whole range).
  const auto allocate = [&](uint64_t goal, uint32_t mean_run, bool align) {
    uint64_t stalls = 0;
    while (blocks_.size() < goal && stalls < 2000) {
      const uint64_t rank = region_sampler.Sample(build_rng);
      const uint64_t region = MixHash64(rank ^ profile_.seed) % regions;
      const uint64_t region_base = region * kRegionBlocks;
      const uint64_t region_span =
          std::min(kRegionBlocks, profile_.range_blocks - region_base);
      uint64_t start = region_base + build_rng.Below(region_span);
      uint64_t run = 1 + build_rng.Below(2 * mean_run);
      if (align) {
        // Hot files fill whole 256 KB erase-block regions (Figure 1's dense
        // tail): align to and round up to erase-block granularity.
        start &= ~uint64_t{63};
        run = (run + 63) & ~uint64_t{63};
      }
      const size_t before = blocks_.size();
      for (uint64_t i = 0; i < run && blocks_.size() < goal; ++i) {
        const Lbn lbn = start + i;
        if (lbn >= profile_.range_blocks) {
          break;
        }
        if (allocated_.insert(lbn).second) {
          blocks_.push_back(lbn);
        }
      }
      if (blocks_.size() != before) {
        runs.emplace_back(before, blocks_.size() - before);
        stalls = 0;
      } else {
        ++stalls;
      }
    }
    while (blocks_.size() < goal) {
      const size_t before = blocks_.size();
      for (Lbn lbn = 0; blocks_.size() < goal && lbn < profile_.range_blocks; ++lbn) {
        if (allocated_.insert(lbn).second) {
          blocks_.push_back(lbn);
          if (blocks_.size() - before >= 2 * mean_run) {
            break;
          }
        }
      }
      if (blocks_.size() == before) {
        break;
      }
      runs.emplace_back(before, blocks_.size() - before);
    }
  };

  // Hot set first, in long runs (large active files); cold tail after, in
  // short runs (scattered small files).
  allocate(hot_target, profile_.hot_run_blocks, /*align=*/true);
  const size_t hot_run_count = runs.size();
  hot_count_ = blocks_.size();
  allocate(target, profile_.alloc_run_blocks, /*align=*/false);

  // Shuffle at *run* granularity within each group: popularity (Zipf rank ~
  // position) stays spatially correlated — hot files are hot in their
  // entirety — which is what makes 256 KB block-level mapping effective.
  for (size_t i = hot_run_count; i > 1; --i) {
    std::swap(runs[i - 1], runs[build_rng.Below(i)]);
  }
  for (size_t i = runs.size(); i > hot_run_count + 1; --i) {
    std::swap(runs[i - 1], runs[hot_run_count + build_rng.Below(i - hot_run_count)]);
  }
  std::vector<Lbn> ordered;
  ordered.reserve(blocks_.size());
  run_starts_.clear();
  for (const auto& [first, count] : runs) {
    run_starts_.push_back(ordered.size());
    for (size_t i = 0; i < count; ++i) {
      ordered.push_back(blocks_[first + i]);
    }
  }
  blocks_ = std::move(ordered);

  if (hot_count_ == 0) {
    hot_count_ = 1;
  }
  hot_runs_ = hot_run_count == 0 ? 1 : hot_run_count;
  run_sampler_ = std::make_unique<ZipfSampler>(hot_runs_, profile_.hot_zipf_s);
}

void SyntheticWorkload::Rewind() {
  rng_ = Rng(profile_.seed ^ 0xf00dull);
  emitted_ = 0;
  next_cold_ = 0;
  run_next_ = kInvalidLbn;
  run_remaining_ = 0;
  run_is_write_ = false;
  recent_writes_.clear();
  recent_pos_ = 0;
  const size_t cold_blocks = blocks_.size() - hot_count_;
  cold_prob_ = profile_.total_ops == 0
                   ? 0.0
                   : static_cast<double>(cold_blocks) / static_cast<double>(profile_.total_ops);
}

size_t SyntheticWorkload::SampleHotIndex(bool is_write) {
  size_t span = hot_runs_;
  if (!is_write && profile_.read_concentration > 1) {
    span = std::max<size_t>(1, hot_runs_ / profile_.read_concentration);
  }
  const size_t run = run_sampler_->Sample(rng_) % span;
  const size_t start = run_starts_[run];
  const size_t end = run + 1 < run_starts_.size() ? run_starts_[run + 1] : blocks_.size();
  return start + rng_.Below(end - start);
}

bool SyntheticWorkload::Next(TraceRecord* record) {
  if (emitted_ >= profile_.total_ops) {
    return false;
  }

  Lbn lbn;
  bool is_write;
  if (run_remaining_ > 0 && allocated_.count(run_next_) != 0) {
    lbn = run_next_;
    is_write = run_is_write_;
    ++run_next_;
    --run_remaining_;
  } else {
    run_remaining_ = 0;
    const size_t cold_left = blocks_.size() - hot_count_ - next_cold_;
    if (cold_left > 0 && rng_.Chance(cold_prob_)) {
      // Cold tail accesses arrive as sequential scan bursts (file reads,
      // backups), not as isolated single-block touches.
      lbn = blocks_[hot_count_ + next_cold_];
      const auto burst = static_cast<uint32_t>(
          std::min<uint64_t>(cold_left, 1 + rng_.Below(2 * profile_.access_run_blocks - 1)));
      next_cold_ += burst;
      is_write = rng_.Chance(profile_.write_fraction);
      if (burst > 1) {
        run_remaining_ = burst - 1;
        run_next_ = lbn + 1;
        run_is_write_ = is_write;
      }
    } else {
      is_write = rng_.Chance(profile_.write_fraction);
      if (!is_write && !recent_writes_.empty() && rng_.Chance(profile_.read_recency)) {
        // Read-after-write locality: read back a recently-written file
        // sequentially.
        lbn = recent_writes_[rng_.Below(recent_writes_.size())];
        if (rng_.Chance(profile_.seq_prob)) {
          run_remaining_ =
              static_cast<uint32_t>(1 + rng_.Below(2 * profile_.access_run_blocks - 1));
          run_next_ = lbn + 1;
          run_is_write_ = false;
        }
      } else {
        lbn = blocks_[SampleHotIndex(is_write)];
        if (rng_.Chance(profile_.seq_prob)) {
          run_remaining_ =
              static_cast<uint32_t>(1 + rng_.Below(2 * profile_.access_run_blocks - 1));
          run_next_ = lbn + 1;
          run_is_write_ = is_write;
        }
      }
    }
  }

  if (is_write) {
    constexpr size_t kRecentWindow = 8192;
    if (recent_writes_.size() < kRecentWindow) {
      recent_writes_.push_back(lbn);
    } else {
      recent_writes_[recent_pos_] = lbn;
      recent_pos_ = (recent_pos_ + 1) % kRecentWindow;
    }
  }

  record->lbn = lbn;
  record->op = is_write ? TraceOp::kWrite : TraceOp::kRead;
  ++emitted_;
  return true;
}

// ---------------------------------------------------------------------------
// Tiny-object KV workloads (DESIGN.md §5k)
// ---------------------------------------------------------------------------

KvZipfWorkload::KvZipfWorkload(const KvWorkloadProfile& profile)
    : profile_(profile), rng_(profile.seed ^ 0xcafeull) {
  // Size classes are powers of two spanning [min_size, max_size]; a Zipf
  // draw over classes (small classes most popular) plus a uniform position
  // within the class gives the long-tailed small-object mix. One draw per
  // key at build time: an object's size is a property of the key.
  uint32_t min_size = std::max(profile_.min_size, kKvMinObjectBytes);
  uint32_t max_size = std::min(profile_.max_size, kKvMaxObjectBytes);
  if (max_size < min_size) {
    max_size = min_size;
  }
  uint32_t classes = 1;
  for (uint32_t lo = min_size; lo * 2 <= max_size; lo *= 2) {
    ++classes;
  }
  ZipfSampler class_sampler(classes, profile_.size_zipf_s);
  Rng build_rng(profile_.seed);
  sizes_.reserve(profile_.unique_keys);
  for (uint64_t i = 0; i < profile_.unique_keys; ++i) {
    const uint64_t cls = class_sampler.Sample(build_rng);
    const uint32_t lo = min_size << cls;
    const uint32_t hi = std::min<uint32_t>(lo * 2 - 1, max_size);
    sizes_.push_back(lo + static_cast<uint32_t>(build_rng.Below(hi - lo + 1)));
  }
  key_sampler_ = std::make_unique<ZipfSampler>(std::max<uint64_t>(1, profile_.unique_keys),
                                               profile_.key_zipf_s);
  Rewind();
}

void KvZipfWorkload::Rewind() {
  rng_ = Rng(profile_.seed ^ 0xcafeull);
  emitted_ = 0;
}

bool KvZipfWorkload::Next(KvTraceRecord* record) {
  if (emitted_ >= profile_.total_ops) {
    return false;
  }
  const uint64_t rank = key_sampler_->Sample(rng_);
  // Spread key ranks over the 64-bit namespace so shard routing sees hashed
  // keys, while keeping rank recoverable determinism (same rank -> same key).
  record->key = MixHash64(rank ^ (profile_.seed * 0x9e3779b97f4a7c15ull));
  const double draw = rng_.NextDouble();
  if (draw < profile_.get_fraction) {
    record->op = KvOp::kGet;
    record->size = 0;
  } else if (draw < profile_.get_fraction + profile_.delete_fraction) {
    record->op = KvOp::kDelete;
    record->size = 0;
  } else {
    record->op = KvOp::kSet;
    record->size = sizes_[rank];
  }
  ++emitted_;
  return true;
}

}  // namespace flashtier
