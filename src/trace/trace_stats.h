// Trace statistics: Table 3 characteristics and the Figure 1 region-density
// distribution.

#ifndef FLASHTIER_TRACE_TRACE_STATS_H_
#define FLASHTIER_TRACE_TRACE_STATS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/trace/kv_trace.h"
#include "src/trace/trace.h"

namespace flashtier {

class TraceStats {
 public:
  void Add(const TraceRecord& record);

  // Consumes an entire source (leaves it rewound).
  void Consume(TraceSource& source);

  uint64_t total_ops() const { return total_ops_; }
  uint64_t writes() const { return writes_; }
  double write_fraction() const {
    return total_ops_ == 0 ? 0.0 : static_cast<double>(writes_) / static_cast<double>(total_ops_);
  }
  uint64_t unique_blocks() const { return counts_.size(); }
  // Address range spanned by the trace ("Range" in Table 3): highest
  // referenced byte address, i.e. the footprint of the containing disk.
  uint64_t range_bytes() const { return total_ops_ == 0 ? 0 : (max_lbn_ + 1) * 4096; }

  // Mean accesses (and writes) per referenced block, optionally restricted to
  // the `top_fraction` most-accessed blocks. Section 2 observes writes/block
  // of the top 25% is ~4x the whole-trace average for write-heavy traces.
  double MeanAccessesPerBlock(double top_fraction = 1.0) const;
  double MeanWritesPerBlock(double top_fraction = 1.0) const;

  // The LBNs of the `top_fraction` most-accessed blocks — the paper's model
  // of "blocks likely to be cached"; used to size caches at 25%.
  std::vector<Lbn> TopBlocks(double top_fraction) const;

  // Figure 1: for every 100,000-block region containing at least one of the
  // top-`top_fraction` blocks, the number of those blocks that fall in it.
  // Returned sorted ascending (a CDF over regions).
  std::vector<uint64_t> RegionDensities(double top_fraction) const;

  // Fraction of the (filtered) regions whose referenced-block count is below
  // `percent_of_region` percent of the region size.
  double FractionOfRegionsBelow(double top_fraction, double percent_of_region) const;

  // Re-reference intervals, the admission-control view of a trace: for every
  // access to a previously seen block, the number of trace records since
  // that block's prior access, bucketed by power of two — bucket i counts
  // intervals in [2^i, 2^(i+1)). A trace whose mass sits in small buckets
  // rewards second-hit admission (a short ghost table recognizes the reuse);
  // mass in the large buckets plus many single-access blocks is traffic a
  // selective policy can keep out of flash at little hit-rate cost.
  const std::vector<uint64_t>& RerefIntervalHistogram() const { return reref_hist_; }
  // Accesses that had a prior reference (the histogram's total mass).
  uint64_t reref_accesses() const { return reref_accesses_; }
  // Blocks referenced exactly once — cache fills that can never hit.
  uint64_t SingleAccessBlocks() const;

 private:
  struct BlockCount {
    uint64_t accesses = 0;
    uint64_t writes = 0;
    uint64_t last_seen = 0;  // 1-based index of this block's latest access
  };

  std::unordered_map<Lbn, BlockCount> counts_;
  uint64_t total_ops_ = 0;
  uint64_t writes_ = 0;
  Lbn max_lbn_ = 0;
  std::vector<uint64_t> reref_hist_;
  uint64_t reref_accesses_ = 0;
};

// KV-trace statistics (DESIGN.md §5k): the object-level view a slab-packing
// cache and its admission policy care about — how small the objects are
// (packing benefit) and how soon keys are re-referenced (admission benefit).
class KvTraceStats {
 public:
  void Add(const KvTraceRecord& record);

  // Consumes an entire source (leaves it rewound).
  void Consume(KvTraceSource& source);

  uint64_t total_ops() const { return total_ops_; }
  uint64_t gets() const { return gets_; }
  uint64_t sets() const { return sets_; }
  uint64_t deletes() const { return deletes_; }
  uint64_t unique_keys() const { return counts_.size(); }
  uint64_t set_bytes() const { return set_bytes_; }
  double MeanObjectBytes() const {
    return sets_ == 0 ? 0.0 : static_cast<double>(set_bytes_) / static_cast<double>(sets_);
  }
  // Sets per 4 KB slab at perfect packing vs one: the headroom slab packing
  // has over one-object-per-block placement for this trace.
  double ObjectsPerSlabAtMeanSize() const {
    const double mean = MeanObjectBytes();
    return mean == 0.0 ? 0.0 : 4096.0 / mean;
  }

  // Object-size histogram over set operations: bucket i counts sets with
  // size in [2^i, 2^(i+1)).
  const std::vector<uint64_t>& SizeHistogram() const { return size_hist_; }

  // Per-key re-reference intervals, mirroring TraceStats: for every access
  // to a previously seen key, records since its prior access, bucketed by
  // power of two.
  const std::vector<uint64_t>& RerefIntervalHistogram() const { return reref_hist_; }
  uint64_t reref_accesses() const { return reref_accesses_; }
  // Keys referenced exactly once — fills that can never hit.
  uint64_t SingleAccessKeys() const;

 private:
  struct KeyCount {
    uint64_t accesses = 0;
    uint64_t last_seen = 0;  // 1-based index of this key's latest access
  };

  std::unordered_map<uint64_t, KeyCount> counts_;
  uint64_t total_ops_ = 0;
  uint64_t gets_ = 0;
  uint64_t sets_ = 0;
  uint64_t deletes_ = 0;
  uint64_t set_bytes_ = 0;
  std::vector<uint64_t> size_hist_;
  std::vector<uint64_t> reref_hist_;
  uint64_t reref_accesses_ = 0;
};

}  // namespace flashtier

#endif  // FLASHTIER_TRACE_TRACE_STATS_H_
