#include "src/trace/trace_file.h"

#include <cstring>

#include "src/util/crc32.h"

namespace flashtier {
namespace {

constexpr char kMagic[4] = {'F', 'T', 'T', 'R'};
constexpr char kKvMagic[4] = {'F', 'T', 'K', 'V'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderSize = 4 + 4 + 8 + 8;
constexpr size_t kRecordSize = 8 + 1;
constexpr size_t kKvRecordSize = 8 + 1 + 4;

void PackRecord(const TraceRecord& r, uint8_t out[kRecordSize]) {
  std::memcpy(out, &r.lbn, 8);
  out[8] = static_cast<uint8_t>(r.op);
}

TraceRecord UnpackRecord(const uint8_t in[kRecordSize]) {
  TraceRecord r;
  std::memcpy(&r.lbn, in, 8);
  r.op = static_cast<TraceOp>(in[8]);
  return r;
}

void PackKvRecord(const KvTraceRecord& r, uint8_t out[kKvRecordSize]) {
  std::memcpy(out, &r.key, 8);
  out[8] = static_cast<uint8_t>(r.op);
  std::memcpy(out + 9, &r.size, 4);
}

KvTraceRecord UnpackKvRecord(const uint8_t in[kKvRecordSize]) {
  KvTraceRecord r;
  std::memcpy(&r.key, in, 8);
  r.op = static_cast<KvOp>(in[8]);
  std::memcpy(&r.size, in + 9, 4);
  return r;
}

}  // namespace

TraceFileKind ClassifyTraceFile(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return TraceFileKind::kUnknown;
  }
  char magic[4] = {};
  const size_t n = std::fread(magic, 1, 4, f);
  std::fclose(f);
  if (n != 4) {
    return TraceFileKind::kUnknown;
  }
  if (std::memcmp(magic, kMagic, 4) == 0) {
    return TraceFileKind::kBlock;
  }
  if (std::memcmp(magic, kKvMagic, 4) == 0) {
    return TraceFileKind::kKv;
  }
  return TraceFileKind::kUnknown;
}

TraceFileWriter::~TraceFileWriter() {
  if (file_ != nullptr) {
    // A destructor has no channel to report a failed flush; callers that
    // need the verdict must call Close() themselves before destruction.
    (void)Close();
  }
}

Status TraceFileWriter::Open(const std::string& path) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::kIoError;
  }
  count_ = 0;
  crc_ = 0;
  // Placeholder header, rewritten on Close with the final count.
  uint8_t header[kHeaderSize] = {};
  std::memcpy(header, kMagic, 4);
  std::memcpy(header + 4, &kVersion, 4);
  if (std::fwrite(header, 1, kHeaderSize, file_) != kHeaderSize) {
    return Status::kIoError;
  }
  return Status::kOk;
}

Status TraceFileWriter::Append(const TraceRecord& record) {
  if (file_ == nullptr) {
    return Status::kInvalidArgument;
  }
  uint8_t buf[kRecordSize];
  PackRecord(record, buf);
  if (std::fwrite(buf, 1, kRecordSize, file_) != kRecordSize) {
    return Status::kIoError;
  }
  crc_ = Crc32c(crc_, buf, kRecordSize);
  ++count_;
  return Status::kOk;
}

Status TraceFileWriter::Close() {
  if (file_ == nullptr) {
    return Status::kInvalidArgument;
  }
  Status result = Status::kOk;
  if (std::fwrite(&crc_, 1, 4, file_) != 4) {
    result = Status::kIoError;
  }
  // Rewrite the header with the final record count.
  uint8_t header[kHeaderSize] = {};
  std::memcpy(header, kMagic, 4);
  std::memcpy(header + 4, &kVersion, 4);
  std::memcpy(header + 8, &count_, 8);
  if (std::fseek(file_, 0, SEEK_SET) != 0 ||
      std::fwrite(header, 1, kHeaderSize, file_) != kHeaderSize) {
    result = Status::kIoError;
  }
  std::fclose(file_);
  file_ = nullptr;
  return result;
}

TraceFileReader::~TraceFileReader() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

Status TraceFileReader::Open(const std::string& path) {
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    return Status::kIoError;
  }
  uint8_t header[kHeaderSize];
  if (std::fread(header, 1, kHeaderSize, file_) != kHeaderSize ||
      std::memcmp(header, kMagic, 4) != 0) {
    return Status::kCorrupt;
  }
  uint32_t version = 0;
  std::memcpy(&version, header + 4, 4);
  if (version != kVersion) {
    return Status::kCorrupt;
  }
  std::memcpy(&count_, header + 8, 8);
  // Validate the footer CRC by streaming all records once.
  uint32_t crc = 0;
  uint8_t buf[kRecordSize];
  for (uint64_t i = 0; i < count_; ++i) {
    if (std::fread(buf, 1, kRecordSize, file_) != kRecordSize) {
      return Status::kCorrupt;
    }
    crc = Crc32c(crc, buf, kRecordSize);
  }
  uint32_t stored = 0;
  if (std::fread(&stored, 1, 4, file_) != 4 || stored != crc) {
    return Status::kCorrupt;
  }
  Rewind();
  return Status::kOk;
}

bool TraceFileReader::Next(TraceRecord* record) {
  if (file_ == nullptr || pos_ >= count_) {
    return false;
  }
  uint8_t buf[kRecordSize];
  if (std::fread(buf, 1, kRecordSize, file_) != kRecordSize) {
    return false;
  }
  *record = UnpackRecord(buf);
  ++pos_;
  return true;
}

void TraceFileReader::Rewind() {
  pos_ = 0;
  if (file_ != nullptr) {
    std::fseek(file_, static_cast<long>(kHeaderSize), SEEK_SET);
  }
}

// --------------------------------------------------------------------------
// KV trace files ("FTKV"): same header/footer scheme, 13-byte records.
// --------------------------------------------------------------------------

KvTraceFileWriter::~KvTraceFileWriter() {
  if (file_ != nullptr) {
    (void)Close();
  }
}

Status KvTraceFileWriter::Open(const std::string& path) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::kIoError;
  }
  count_ = 0;
  crc_ = 0;
  uint8_t header[kHeaderSize] = {};
  std::memcpy(header, kKvMagic, 4);
  std::memcpy(header + 4, &kVersion, 4);
  if (std::fwrite(header, 1, kHeaderSize, file_) != kHeaderSize) {
    return Status::kIoError;
  }
  return Status::kOk;
}

Status KvTraceFileWriter::Append(const KvTraceRecord& record) {
  if (file_ == nullptr) {
    return Status::kInvalidArgument;
  }
  uint8_t buf[kKvRecordSize];
  PackKvRecord(record, buf);
  if (std::fwrite(buf, 1, kKvRecordSize, file_) != kKvRecordSize) {
    return Status::kIoError;
  }
  crc_ = Crc32c(crc_, buf, kKvRecordSize);
  ++count_;
  return Status::kOk;
}

Status KvTraceFileWriter::Close() {
  if (file_ == nullptr) {
    return Status::kInvalidArgument;
  }
  Status result = Status::kOk;
  if (std::fwrite(&crc_, 1, 4, file_) != 4) {
    result = Status::kIoError;
  }
  uint8_t header[kHeaderSize] = {};
  std::memcpy(header, kKvMagic, 4);
  std::memcpy(header + 4, &kVersion, 4);
  std::memcpy(header + 8, &count_, 8);
  if (std::fseek(file_, 0, SEEK_SET) != 0 ||
      std::fwrite(header, 1, kHeaderSize, file_) != kHeaderSize) {
    result = Status::kIoError;
  }
  std::fclose(file_);
  file_ = nullptr;
  return result;
}

KvTraceFileReader::~KvTraceFileReader() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

Status KvTraceFileReader::Open(const std::string& path) {
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    return Status::kIoError;
  }
  uint8_t header[kHeaderSize];
  if (std::fread(header, 1, kHeaderSize, file_) != kHeaderSize ||
      std::memcmp(header, kKvMagic, 4) != 0) {
    return Status::kCorrupt;
  }
  uint32_t version = 0;
  std::memcpy(&version, header + 4, 4);
  if (version != kVersion) {
    return Status::kCorrupt;
  }
  std::memcpy(&count_, header + 8, 8);
  uint32_t crc = 0;
  uint8_t buf[kKvRecordSize];
  for (uint64_t i = 0; i < count_; ++i) {
    if (std::fread(buf, 1, kKvRecordSize, file_) != kKvRecordSize) {
      return Status::kCorrupt;
    }
    crc = Crc32c(crc, buf, kKvRecordSize);
  }
  uint32_t stored = 0;
  if (std::fread(&stored, 1, 4, file_) != 4 || stored != crc) {
    return Status::kCorrupt;
  }
  Rewind();
  return Status::kOk;
}

bool KvTraceFileReader::Next(KvTraceRecord* record) {
  if (file_ == nullptr || pos_ >= count_) {
    return false;
  }
  uint8_t buf[kKvRecordSize];
  if (std::fread(buf, 1, kKvRecordSize, file_) != kKvRecordSize) {
    return false;
  }
  *record = UnpackKvRecord(buf);
  ++pos_;
  return true;
}

void KvTraceFileReader::Rewind() {
  pos_ = 0;
  if (file_ != nullptr) {
    std::fseek(file_, static_cast<long>(kHeaderSize), SEEK_SET);
  }
}

}  // namespace flashtier
