// Binary trace file formats: 24-byte header + packed records.
//
//   block trace: magic "FTTR", u32 version, u64 record count, u64 reserved
//                record: u64 lbn, u8 op (9 bytes)
//   kv trace:    magic "FTKV", same header shape
//                record: u64 key, u8 op, u32 size (13 bytes)
//
// Checksummed footer (CRC32-C over all records) so truncated files are
// detected on open. TraceFileMagic() peeks a file's magic so tools can
// dispatch on trace kind.

#ifndef FLASHTIER_TRACE_TRACE_FILE_H_
#define FLASHTIER_TRACE_TRACE_FILE_H_

#include <cstdio>
#include <memory>
#include <string>

#include "src/trace/kv_trace.h"
#include "src/trace/trace.h"
#include "src/util/status.h"

namespace flashtier {

enum class TraceFileKind : uint8_t { kUnknown = 0, kBlock, kKv };

// Reads just enough of `path` to classify it (does not validate the CRC).
TraceFileKind ClassifyTraceFile(const std::string& path);

// Streams records to a file; finalizes header+footer on Close().
class TraceFileWriter {
 public:
  TraceFileWriter() = default;
  ~TraceFileWriter();

  TraceFileWriter(const TraceFileWriter&) = delete;
  TraceFileWriter& operator=(const TraceFileWriter&) = delete;

  Status Open(const std::string& path);
  Status Append(const TraceRecord& record);
  Status Close();

  uint64_t written() const { return count_; }

 private:
  FILE* file_ = nullptr;
  uint64_t count_ = 0;
  uint32_t crc_ = 0;
};

// Reads a trace file as a TraceSource. Validates header and footer CRC.
class TraceFileReader final : public TraceSource {
 public:
  TraceFileReader() = default;
  ~TraceFileReader() override;

  TraceFileReader(const TraceFileReader&) = delete;
  TraceFileReader& operator=(const TraceFileReader&) = delete;

  Status Open(const std::string& path);

  bool Next(TraceRecord* record) override;
  void Rewind() override;
  uint64_t size_hint() const override { return count_; }

 private:
  FILE* file_ = nullptr;
  uint64_t count_ = 0;
  uint64_t pos_ = 0;
};

// Streams KV records to a file; finalizes header+footer on Close().
class KvTraceFileWriter {
 public:
  KvTraceFileWriter() = default;
  ~KvTraceFileWriter();

  KvTraceFileWriter(const KvTraceFileWriter&) = delete;
  KvTraceFileWriter& operator=(const KvTraceFileWriter&) = delete;

  Status Open(const std::string& path);
  Status Append(const KvTraceRecord& record);
  Status Close();

  uint64_t written() const { return count_; }

 private:
  FILE* file_ = nullptr;
  uint64_t count_ = 0;
  uint32_t crc_ = 0;
};

// Reads a KV trace file as a KvTraceSource. Validates header and footer CRC.
class KvTraceFileReader final : public KvTraceSource {
 public:
  KvTraceFileReader() = default;
  ~KvTraceFileReader() override;

  KvTraceFileReader(const KvTraceFileReader&) = delete;
  KvTraceFileReader& operator=(const KvTraceFileReader&) = delete;

  Status Open(const std::string& path);

  bool Next(KvTraceRecord* record) override;
  void Rewind() override;
  uint64_t size_hint() const override { return count_; }

 private:
  FILE* file_ = nullptr;
  uint64_t count_ = 0;
  uint64_t pos_ = 0;
};

}  // namespace flashtier

#endif  // FLASHTIER_TRACE_TRACE_FILE_H_
