// Tiny-object key-value trace records and sources (DESIGN.md §5k).
//
// Where the block traces model a disk address space, KV traces model an
// object namespace: a record is a 64-bit key, an operation (get/set/delete)
// and — for sets — the object's size in bytes (64 B..4 KB). The KvCache
// replays them through the same style of pull interface the block replay
// engine uses.

#ifndef FLASHTIER_TRACE_KV_TRACE_H_
#define FLASHTIER_TRACE_KV_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace flashtier {

enum class KvOp : uint8_t { kGet = 0, kSet = 1, kDelete = 2 };

// Object-size bounds the KV layer supports: a slot header plus at least one
// byte up to a whole slab payload.
inline constexpr uint32_t kKvMinObjectBytes = 64;
inline constexpr uint32_t kKvMaxObjectBytes = 4096;

struct KvTraceRecord {
  uint64_t key = 0;
  KvOp op = KvOp::kGet;
  uint32_t size = 0;  // object bytes; meaningful for kSet, zero otherwise

  friend bool operator==(const KvTraceRecord&, const KvTraceRecord&) = default;
};

// Pull-based KV trace stream; deterministic like TraceSource.
class KvTraceSource {
 public:
  virtual ~KvTraceSource() = default;

  virtual bool Next(KvTraceRecord* record) = 0;
  virtual void Rewind() = 0;
  virtual uint64_t size_hint() const { return 0; }
};

// Trivial in-memory KV trace, mainly for tests.
class KvVectorTrace final : public KvTraceSource {
 public:
  KvVectorTrace() = default;
  explicit KvVectorTrace(std::vector<KvTraceRecord> records) : records_(std::move(records)) {}

  void Append(uint64_t key, KvOp op, uint32_t size = 0) { records_.push_back({key, op, size}); }

  bool Next(KvTraceRecord* record) override {
    if (pos_ >= records_.size()) {
      return false;
    }
    *record = records_[pos_++];
    return true;
  }

  void Rewind() override { pos_ = 0; }
  uint64_t size_hint() const override { return records_.size(); }

  const std::vector<KvTraceRecord>& records() const { return records_; }

 private:
  std::vector<KvTraceRecord> records_;
  size_t pos_ = 0;
};

}  // namespace flashtier

#endif  // FLASHTIER_TRACE_KV_TRACE_H_
