// KV trace replay engine: drives a KvCache with a KvTraceSource, mirroring
// the block ReplayEngine's determinism contract (src/core/replay.h).
//
// Records route to shards by key hash (a pure function of the key), each
// shard's subsequence replays as one sequential computation on whichever
// worker thread owns it, and metrics merge in shard-index order — so every
// virtual-time metric, including the full KvStats block, is bit-identical
// for any thread count and any queue depth assignment. replay_parallel
// asserts exactly that. Queue depth N > 1 uses the same OpenLoopQueue
// bracketing as block replay, so KV percentiles include queueing delay.

#ifndef FLASHTIER_KV_KV_REPLAY_H_
#define FLASHTIER_KV_KV_REPLAY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/kv/kv_cache.h"
#include "src/trace/kv_trace.h"
#include "src/util/stats.h"
#include "src/util/sync.h"
#include "src/util/thread_annotations.h"

namespace flashtier {

struct KvReplayMetrics {
  uint64_t requests = 0;
  uint64_t failed_requests = 0;  // kBackpressure / kNoSpace / kIoError
                                 // (misses are not failures)
  uint64_t elapsed_us = 0;       // max-epoch across shard clocks
  LatencyHistogram response_us;

  // The cache's own view after the run (aggregated in shard order).
  KvStats kv;
  PolicyStats policy;
  PersistStats persist;
  FlashStats flash;
  double flash_writes_per_set = 0.0;

  // Host-side wall clock — the only thread-dependent output.
  uint64_t wall_clock_us = 0;
  uint32_t threads = 1;
  uint32_t shards = 1;
  uint32_t queue_depth = 1;

  double Iops() const {
    return elapsed_us == 0
               ? 0.0
               : static_cast<double>(requests) * 1e6 / static_cast<double>(elapsed_us);
  }
  double MeanResponseUs() const { return response_us.mean(); }
  double ReplayOpsPerSec() const {
    return wall_clock_us == 0
               ? 0.0
               : static_cast<double>(requests) * 1e6 / static_cast<double>(wall_clock_us);
  }
};

class KvReplayEngine {
 public:
  struct Options {
    uint32_t threads = 1;      // workers; clamped to the shard count
    uint32_t queue_depth = 1;  // host requests in flight per shard
    bool dirty_sets = false;   // replay Sets as write-back (dirty) objects
    // Seal every open slab after the trace (outside the measured phase) so
    // flash-write counts compare packed vs naive placement honestly.
    bool flush_at_end = true;
  };

  KvReplayEngine(KvCache* cache, const Options& options) : cache_(cache), options_(options) {}
  explicit KvReplayEngine(KvCache* cache) : KvReplayEngine(cache, Options{}) {}

  // Replays the source to completion; returns metrics for the whole run.
  // Set tokens derive deterministically from (key, global sequence).
  KvReplayMetrics Run(KvTraceSource& source);

 private:
  struct ShardRequest {
    KvTraceRecord record;
    uint64_t seq = 0;  // global trace sequence: token derivation
  };
  struct ShardRun {
    uint64_t requests = 0;
    uint64_t failed_requests = 0;
    uint64_t elapsed_us = 0;
    LatencyHistogram response_us;
  };

  void ReplayShard(KvShard& shard, const std::vector<ShardRequest>& queue, ShardRun* run) const;
  void RecordWorkerError(const std::string& what) EXCLUDES(worker_error_mu_);

  KvCache* cache_;
  Options options_;
  Mutex worker_error_mu_;
  std::string worker_error_ GUARDED_BY(worker_error_mu_);
};

}  // namespace flashtier

#endif  // FLASHTIER_KV_KV_REPLAY_H_
