#include "src/kv/kv_cache.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace flashtier {

namespace {

// Smallest per-shard device the SSC machinery operates comfortably with
// (a handful of erase blocks plus the log reserve).
constexpr uint64_t kMinShardPages = 128;

// Slab spans must divide the 64-page logical erase block (so SE-GC drops
// whole slabs) and keep byte offsets inside PackSlotMeta's 16-bit field.
uint32_t SanitizeSlabPages(uint32_t slab_pages) {
  uint32_t valid = 1;
  for (uint32_t candidate : {1u, 2u, 4u, 8u, 16u}) {
    if (candidate <= slab_pages) {
      valid = candidate;
    }
  }
  return valid;
}

KvCacheConfig ShardSlice(const KvCacheConfig& config, uint32_t shards, uint32_t index) {
  KvCacheConfig slice = config;
  slice.shards = 1;
  slice.slab_pages = SanitizeSlabPages(config.slab_pages);
  slice.ssc.capacity_pages =
      std::max<uint64_t>(kMinShardPages, config.ssc.capacity_pages / std::max<uint32_t>(1, shards));
  slice.admission = ShardPolicyConfig(config.admission, std::max<uint32_t>(1, shards), index);
  return slice;
}

}  // namespace

// ---------------------------------------------------------------------------
// KvShard
// ---------------------------------------------------------------------------

KvShard::KvShard(const KvCacheConfig& config, uint32_t shard_index)
    : config_(ShardSlice(config, config.shards, shard_index)) {
  slab_capacity_bytes_ = config_.slab_pages * kKvPageBytes;
  ssc_ = std::make_unique<SscDevice>(config_.ssc, &clock_);
  policy_ = MakeAdmissionPolicy(config_.admission, &clock_);
  ssc_->set_kv_snapshot_source([this] { return SnapshotSlots(); });
}

Status KvShard::AdmitWithDrain() {
  PersistenceManager* pm = ssc_->persist();
  for (int attempt = 0; attempt < 4; ++attempt) {
    if (pm->AdmitHostOp()) {
      return Status::kOk;
    }
    ++stats_.backpressure_stalls;
    ssc_->DrainLog();
  }
  return pm->AdmitHostOp() ? Status::kOk : Status::kBackpressure;
}

void KvShard::CreateOpenSlab() {
  open_seq_ = next_slab_seq_++;
  slabs_.emplace(open_seq_, KvSlab{});
}

Status KvShard::EnsureRoomFor(uint32_t charge) {
  // Loops because SealOpenSlab may trigger a compaction that leaves a new,
  // partially filled open slab behind; each pass either finds room or seals
  // again, and compaction strictly shrinks the dead-byte pool, so the loop
  // converges (the bound is a backstop, not a budget).
  for (int attempt = 0; attempt < 64; ++attempt) {
    if (open_seq_ == kNoSlab) {
      CreateOpenSlab();
    }
    KvSlab& slab = slabs_.at(open_seq_);
    if (slab.used_bytes + charge <= slab_capacity_bytes_) {
      return Status::kOk;
    }
    const Status sealed = SealOpenSlab();
    if (!IsOk(sealed)) {
      return sealed;
    }
  }
  return Status::kNoSpace;
}

Status KvShard::SealOpenSlab() {
  if (open_seq_ == kNoSlab) {
    return Status::kOk;
  }
  const uint64_t seq = open_seq_;
  KvSlab& slab = slabs_.at(seq);
  if (slab.live_count == 0) {
    // Everything packed here was overwritten or deleted before the slab ever
    // reached flash; the delete records are already logged, so just forget it.
    slabs_.erase(seq);
    open_seq_ = kNoSlab;
    return Status::kOk;
  }
  const uint32_t pages = std::max<uint32_t>(1, (slab.used_bytes + kKvPageBytes - 1) / kKvPageBytes);
  const bool dirty_any = slab.dirty_live > 0;
  for (uint32_t p = 0; p < pages; ++p) {
    const Lbn lbn = SlabBaseLbn(seq) + p;
    const uint64_t token = SlabPageToken(seq, p);
    Status st = Status::kOk;
    int drains = 0;
    while (true) {
      st = dirty_any ? ssc_->WriteDirty(lbn, token) : ssc_->WriteClean(lbn, token);
      if (st == Status::kNoSpace) {
        // Evictions are bounded by the sealed-slab count, so this loop
        // terminates; it may take several to free a whole erase block.
        if (EvictCleanSlab()) {
          continue;
        }
        break;  // every remaining sealed slab still holds dirty objects
      }
      if (st == Status::kBackpressure && drains < 4) {
        ++drains;
        ++stats_.backpressure_stalls;
        ssc_->DrainLog();
        continue;
      }
      break;
    }
    if (!IsOk(st)) {
      // The slab cannot reach flash. Unwind the pages already written and
      // leave the slab open: its objects stay readable from device RAM and
      // the dirty ones are already durable in the log.
      for (uint32_t q = 0; q < p; ++q) {
        AssertOk(ssc_->Evict(SlabBaseLbn(seq) + q));
      }
      return st;
    }
  }
  slab.sealed = true;
  slab.dirty_written = dirty_any;
  slab.pages_spanned = pages;
  ++stats_.slab_fills;
  stats_.slab_page_writes += pages;
  open_seq_ = kNoSlab;
  MaybeCompact();
  return Status::kOk;
}

bool KvShard::EvictCleanSlab() {
  uint64_t victim = kNoSlab;
  for (const auto& [seq, slab] : slabs_) {
    if (!slab.sealed || slab.dirty_live != 0 || seq == compacting_seq_) {
      continue;
    }
    victim = seq;  // lowest sequence number: oldest data first
    break;
  }
  if (victim == kNoSlab) {
    return false;
  }
  DropSlab(victim, /*policy_evict=*/true, &stats_.evicted_slots);
  ++stats_.slab_evictions;
  return true;
}

void KvShard::DropSlab(uint64_t seq, bool policy_evict, uint64_t* slot_counter) {
  KvSlab& slab = slabs_.at(seq);
  {
    PersistenceManager::AtomicBatchScope batch(ssc_->persist());
    for (uint32_t i = 0; i < slab.slots.size(); ++i) {
      KvSlot& slot = slab.slots[i];
      if (!slot.live) {
        continue;
      }
      if (slot.dirty) {
        // A healthy system never drops a dirty object this way; the counter
        // makes any such loss visible instead of silent.
        ++stats_.lost_objects;
      }
      key_map_.Erase(slot.key);
      if (policy_evict) {
        policy_->OnEvict(slot.key);
      }
      LogRecord rec;
      rec.lsn = ssc_->persist()->NextLsn();
      rec.type = LogOpType::kKvDeleteSlot;
      rec.key = slot.key;
      rec.ppn = seq;
      rec.present_bits = PackSlotMeta(i, slot.size, slot.offset, slot.dirty);
      ssc_->persist()->Append(rec, /*sync=*/false);
      slot.live = false;
      ++*slot_counter;
    }
  }
  const uint32_t pages = slab.sealed ? slab.pages_spanned : 0;
  slabs_.erase(seq);
  if (open_seq_ == seq) {
    open_seq_ = kNoSlab;
  }
  EvictSlabPages(seq, pages);
}

void KvShard::EvictSlabPages(uint64_t seq, uint32_t pages) {
  for (uint32_t p = 0; p < pages; ++p) {
    const Status st = ssc_->Evict(SlabBaseLbn(seq) + p);
    if (!IsOk(st) && st != Status::kNotPresent) {
      // The mapping is gone either way (silent eviction may have beaten us);
      // a medium refusal here cannot strand data, only stale flash pages.
      ++stats_.read_errors;
    }
  }
}

uint64_t KvShard::InvalidateKey(uint64_t key, bool sync) {
  uint64_t* packed = key_map_.Find(key);
  assert(packed != nullptr);
  const uint64_t seq = LocSeq(*packed);
  const uint32_t slot_idx = LocSlot(*packed);
  KvSlab& slab = slabs_.at(seq);
  KvSlot& slot = slab.slots[slot_idx];
  LogRecord rec;
  rec.lsn = ssc_->persist()->NextLsn();
  rec.type = LogOpType::kKvDeleteSlot;
  rec.key = key;
  rec.ppn = seq;
  rec.present_bits = PackSlotMeta(slot_idx, slot.size, slot.offset, slot.dirty);
  slot.live = false;
  slab.live_bytes -= KvSlotBytes(slot.size);
  --slab.live_count;
  if (slot.dirty) {
    --slab.dirty_live;
  }
  key_map_.Erase(key);
  ssc_->persist()->Append(rec, sync);
  return seq;
}

void KvShard::HandleSlabQuiescence(uint64_t seq) {
  auto it = slabs_.find(seq);
  if (it == slabs_.end() || !it->second.sealed) {
    return;
  }
  KvSlab& slab = it->second;
  if (slab.live_count == 0) {
    const uint32_t pages = slab.pages_spanned;
    slabs_.erase(it);
    EvictSlabPages(seq, pages);
    ++stats_.dead_slab_reclaims;
    return;
  }
  if (slab.dirty_written && slab.dirty_live == 0) {
    // The slab's last dirty object is gone; hand its pages back to silent
    // eviction (a crash may revert the clean marks, which is G1-safe — the
    // dirty slots' delete records are durable).
    for (uint32_t p = 0; p < slab.pages_spanned; ++p) {
      const Status st = ssc_->Clean(SlabBaseLbn(seq) + p);
      if (!IsOk(st) && st != Status::kNotPresent) {
        ++stats_.read_errors;
      }
    }
    slab.dirty_written = false;
    ++stats_.slab_cleans;
  }
}

Status KvShard::Set(uint64_t key, uint64_t token, uint32_t size, bool dirty) {
  if (size < kKvMinObjectBytes || size > kKvMaxObjectBytes ||
      KvSlotBytes(size) > slab_capacity_bytes_) {
    return Status::kInvalidArgument;
  }
  policy_->OnAccess(key, /*is_write=*/true);
  ++stats_.sets;
  const bool resident = key_map_.Contains(key);
  const AdmissionOp op = dirty ? AdmissionOp::kWriteDirty : AdmissionOp::kWriteClean;
  const bool admit =
      (dirty && resident) || policy_->ShouldAdmit(key, op, AdmissionContext{resident});
  if (!admit) {
    if (resident) {
      // The backing store now holds newer data than the cached copy; evicting
      // the stale version keeps G2 for objects (miss, never stale).
      const uint64_t seq = InvalidateKey(key, /*sync=*/true);
      HandleSlabQuiescence(seq);
    }
    // OnReject only once the bypass eviction completed: the rejects-window
    // audit (key must be absent) may otherwise indict a crash mid-eviction.
    policy_->OnReject(key);
    ++stats_.rejected_sets;
    return Status::kOk;  // the write went around the cache
  }
  const Status gate = AdmitWithDrain();
  if (!IsOk(gate)) {
    return gate;
  }
  const uint32_t charge = KvSlotBytes(size);
  const Status room = EnsureRoomFor(charge);
  if (!IsOk(room)) {
    if (room == Status::kNoSpace) {
      ++stats_.sets_refused_full;
    }
    return room;
  }
  KvSlab& slab = slabs_.at(open_seq_);
  // Sealing/eviction above may have already dropped the old version; re-look
  // it up now that the open slab is settled.
  uint64_t old_seq = kNoSlab;
  {
    PersistenceManager::AtomicBatchScope batch(ssc_->persist());
    if (key_map_.Contains(key)) {
      old_seq = InvalidateKey(key, /*sync=*/false);
      ++stats_.overwrites;
    }
    const auto slot_idx = static_cast<uint32_t>(slab.slots.size());
    KvSlot slot;
    slot.key = key;
    slot.token = token;
    slot.size = size;
    slot.offset = slab.used_bytes;
    slot.dirty = dirty;
    slot.live = true;
    slab.slots.push_back(slot);
    slab.used_bytes += charge;
    slab.live_bytes += charge;
    ++slab.live_count;
    if (dirty) {
      ++slab.dirty_live;
    }
    key_map_.Insert(key, PackLoc(open_seq_, slot_idx));
    // Same commit rule as the SSC's WriteInternal: dirty data and mapping
    // replacements are durable before the ack; fresh clean inserts group-
    // commit (kFull logs those synchronously too).
    const bool sync = dirty || old_seq != kNoSlab ||
                      ssc_->persist()->mode() == ConsistencyMode::kFull;
    AppendInsertRecord(key, open_seq_, slot, slot_idx, sync);
  }
  stats_.set_bytes += size;
  policy_->OnAdmit(key);
  if (old_seq != kNoSlab && old_seq != open_seq_) {
    HandleSlabQuiescence(old_seq);
  }
  if (!config_.packing) {
    // Naive baseline: one object per slab, sealed (programmed) immediately.
    const Status sealed = SealOpenSlab();
    if (!IsOk(sealed)) {
      return sealed;
    }
  }
  ssc_->MaybeCheckpointForKv();
  return Status::kOk;
}

void KvShard::AppendInsertRecord(uint64_t key, uint64_t seq, const KvSlot& slot,
                                 uint32_t slot_idx, bool sync) {
  LogRecord rec;
  rec.lsn = ssc_->persist()->NextLsn();
  rec.type = LogOpType::kKvInsertSlot;
  rec.key = key;
  rec.ppn = seq;
  rec.present_bits = PackSlotMeta(slot_idx, slot.size, slot.offset, slot.dirty);
  rec.dirty_bits = slot.token;
  ssc_->persist()->Append(rec, sync);
}

Status KvShard::Get(uint64_t key, uint64_t* token_out) {
  policy_->OnAccess(key, /*is_write=*/false);
  ++stats_.gets;
  const uint64_t* packed = key_map_.Find(key);
  if (packed == nullptr) {
    ++stats_.misses;
    return Status::kNotPresent;
  }
  const uint64_t seq = LocSeq(*packed);
  const uint32_t slot_idx = LocSlot(*packed);
  KvSlab& slab = slabs_.at(seq);
  KvSlot& slot = slab.slots[slot_idx];
  if (!slab.sealed) {
    ++stats_.hits;
    ++stats_.open_slab_hits;
    *token_out = slot.token;
    return Status::kOk;
  }
  // An object may straddle slab pages; the hit requires every page it
  // touches (a torn seal or a medium fault can take just one of them).
  const uint32_t first_page = slot.offset / kKvPageBytes;
  const uint32_t last_page = (slot.offset + KvSlotBytes(slot.size) - 1) / kKvPageBytes;
  Status st = Status::kOk;
  for (uint32_t p = first_page; p <= last_page && IsOk(st); ++p) {
    uint64_t page_token = 0;
    st = ssc_->Read(SlabBaseLbn(seq) + p, &page_token);
  }
  if (IsOk(st)) {
    ++stats_.hits;
    *token_out = slot.token;
    return Status::kOk;
  }
  if (st == Status::kNotPresent) {
    // Silent eviction took the slab's pages; retire every slot it still
    // mapped — the same legal G2 miss a block cache sees after SE-GC.
    ++stats_.lazy_slab_drops;
    DropSlab(seq, /*policy_evict=*/true, &stats_.dropped_slots);
    ++stats_.misses;
    return Status::kNotPresent;
  }
  // Medium error (injected fault): the page — and the dirty object on it —
  // is gone. Report the loss honestly and unmap the slot.
  ++stats_.read_errors;
  const uint64_t dead_seq = InvalidateKey(key, /*sync=*/true);
  HandleSlabQuiescence(dead_seq);
  return st;
}

Status KvShard::Delete(uint64_t key) {
  policy_->OnAccess(key, /*is_write=*/true);
  ++stats_.deletes;
  if (!key_map_.Contains(key)) {
    ++stats_.delete_misses;
    return Status::kNotPresent;
  }
  const Status gate = AdmitWithDrain();
  if (!IsOk(gate)) {
    return gate;
  }
  // Synchronous commit: an acknowledged delete stays deleted across a crash
  // (the object analog of G3).
  const uint64_t seq = InvalidateKey(key, /*sync=*/true);
  HandleSlabQuiescence(seq);
  return Status::kOk;
}

Status KvShard::Flush() {
  const Status sealed = SealOpenSlab();
  if (!IsOk(sealed)) {
    return sealed;
  }
  ssc_->persist()->Flush();
  return Status::kOk;
}

void KvShard::MaybeCompact() {
  if (in_compaction_ || !config_.packing) {
    return;
  }
  uint32_t sealed_count = 0;
  uint64_t total_used = 0;
  uint64_t total_dead = 0;
  for (const auto& [seq, slab] : slabs_) {
    if (!slab.sealed) {
      continue;
    }
    ++sealed_count;
    total_used += slab.used_bytes;
    total_dead += slab.used_bytes - slab.live_bytes;
  }
  if (sealed_count < config_.compact_min_sealed_slabs || total_used == 0) {
    return;
  }
  if (static_cast<double>(total_dead) <
      config_.compact_dead_ratio * static_cast<double>(total_used)) {
    return;
  }
  // Victim: the sealed slab wasting the most bytes (ties to the oldest).
  uint64_t victim = kNoSlab;
  uint32_t victim_dead = 0;
  for (const auto& [seq, slab] : slabs_) {
    if (!slab.sealed) {
      continue;
    }
    const uint32_t dead = slab.used_bytes - slab.live_bytes;
    if (victim == kNoSlab || dead > victim_dead) {
      victim = seq;
      victim_dead = dead;
    }
  }
  if (victim == kNoSlab || victim_dead == 0) {
    return;
  }
  in_compaction_ = true;
  compacting_seq_ = victim;
  const Status st = CompactSlab(victim);
  if (!IsOk(st)) {
    ++stats_.compaction_aborts;
  }
  compacting_seq_ = kNoSlab;
  in_compaction_ = false;
}

Status KvShard::CompactSlab(uint64_t victim_seq) {
  KvSlab& victim = slabs_.at(victim_seq);
  uint64_t reclaimed = 0;
  for (const KvSlot& s : victim.slots) {
    if (!s.live) {
      ++reclaimed;
    }
  }
  for (uint32_t i = 0; i < victim.slots.size(); ++i) {
    if (!victim.slots[i].live) {
      continue;
    }
    const uint32_t charge = KvSlotBytes(victim.slots[i].size);
    const Status room = EnsureRoomFor(charge);
    if (!IsOk(room)) {
      // Moves so far are each durable as atomic pairs; the victim keeps its
      // remaining slots and stays sealed. Retry at the next trigger.
      return room;
    }
    KvSlab& open = slabs_.at(open_seq_);
    KvSlot moved = victim.slots[i];
    {
      // delete-old + insert-new must reach the log together: if the batch is
      // lost in a crash, the pre-move state (still on the victim's flash
      // pages until the post-loop flush) remains fully valid.
      PersistenceManager::AtomicBatchScope batch(ssc_->persist());
      LogRecord del;
      del.lsn = ssc_->persist()->NextLsn();
      del.type = LogOpType::kKvDeleteSlot;
      del.key = moved.key;
      del.ppn = victim_seq;
      del.present_bits = PackSlotMeta(i, moved.size, moved.offset, moved.dirty);
      ssc_->persist()->Append(del, /*sync=*/false);
      victim.slots[i].live = false;
      victim.live_bytes -= charge;
      --victim.live_count;
      if (moved.dirty) {
        --victim.dirty_live;
      }
      const auto slot_idx = static_cast<uint32_t>(open.slots.size());
      moved.offset = open.used_bytes;
      open.slots.push_back(moved);
      open.used_bytes += charge;
      open.live_bytes += charge;
      ++open.live_count;
      if (moved.dirty) {
        ++open.dirty_live;
      }
      key_map_.Insert(moved.key, PackLoc(open_seq_, slot_idx));
      AppendInsertRecord(moved.key, open_seq_, moved, slot_idx, /*sync=*/false);
    }
    ++stats_.slots_moved;
  }
  // The moves must be durable before the medium forgets the victim; only
  // then is dropping its pages safe under any crash.
  ssc_->persist()->Flush();
  const uint32_t pages = victim.pages_spanned;
  slabs_.erase(victim_seq);
  EvictSlabPages(victim_seq, pages);
  ++stats_.compactions;
  stats_.slots_reclaimed += reclaimed;
  return Status::kOk;
}

// ---------------------------------------------------------------------------
// Checkpoint / crash / recovery
// ---------------------------------------------------------------------------

std::vector<CheckpointEntry> KvShard::SnapshotSlots() const {
  std::vector<CheckpointEntry> out;
  out.reserve(key_map_.size());
  for (const auto& [seq, slab] : slabs_) {
    for (uint32_t i = 0; i < slab.slots.size(); ++i) {
      const KvSlot& slot = slab.slots[i];
      if (!slot.live) {
        continue;
      }
      CheckpointEntry e;
      e.kv = true;
      e.key = slot.key;
      e.ppn = seq;
      e.present_bits = PackSlotMeta(i, slot.size, slot.offset, slot.dirty);
      e.dirty_bits = slot.token;
      out.push_back(e);
    }
  }
  return out;
}

void KvShard::SimulateCrash() {
  ssc_->SimulateCrash();
  // The slot directory and open slab live in device RAM; they are gone.
  slabs_.clear();
  key_map_.Clear();
  open_seq_ = kNoSlab;
}

void KvShard::ApplyRecoveredInsert(uint64_t key, uint64_t seq, uint64_t meta, uint64_t token) {
  if (key_map_.Contains(key)) {
    ApplyRecoveredDelete(key);  // a newer version supersedes the old slot
  }
  KvSlab& slab = slabs_[seq];
  const uint32_t slot_idx = MetaSlot(meta);
  if (slab.slots.size() <= slot_idx) {
    slab.slots.resize(slot_idx + 1);
  }
  KvSlot& slot = slab.slots[slot_idx];
  slot.key = key;
  slot.token = token;
  slot.size = MetaSize(meta);
  slot.offset = MetaOffset(meta);
  slot.dirty = MetaDirty(meta);
  slot.live = true;
  key_map_.Insert(key, PackLoc(seq, slot_idx));
  next_slab_seq_ = std::max(next_slab_seq_, seq + 1);
}

void KvShard::ApplyRecoveredDelete(uint64_t key) {
  const uint64_t* packed = key_map_.Find(key);
  if (packed == nullptr) {
    return;
  }
  slabs_.at(LocSeq(*packed)).slots[LocSlot(*packed)].live = false;
  key_map_.Erase(key);
}

Status KvShard::Recover() {
  ++stats_.recoveries;
  const Status device = ssc_->Recover();
  if (!IsOk(device)) {
    return device;
  }
  SscDevice::RecoveredKv rkv = ssc_->TakeRecoveredKv();
  slabs_.clear();
  key_map_.Clear();
  open_seq_ = kNoSlab;
  next_slab_seq_ = 0;
  for (const CheckpointEntry& e : rkv.checkpoint) {
    ApplyRecoveredInsert(e.key, e.ppn, e.present_bits, e.dirty_bits);
  }
  for (const LogRecord& r : rkv.log) {
    if (r.type == LogOpType::kKvInsertSlot) {
      ApplyRecoveredInsert(r.key, r.ppn, r.present_bits, r.dirty_bits);
    } else {
      ApplyRecoveredDelete(r.key);
    }
  }
  // Reconcile the rebuilt directory against the medium. Every recovered slab
  // is treated as sealed: slots whose page survived stay served from flash;
  // clean slots whose page is gone become misses (G2); dirty slots whose
  // page is gone — an open slab at the crash, or a seal the log outran — are
  // re-staged into a fresh open slab so acknowledged data stays readable (G1).
  std::vector<KvSlot> restage;
  std::vector<uint64_t> dead_slabs;
  for (auto& [seq, slab] : slabs_) {
    uint32_t used = 0;
    uint32_t live_bytes = 0;
    uint32_t live_count = 0;
    uint32_t dirty_live = 0;
    for (const KvSlot& s : slab.slots) {
      if (!s.live) {
        continue;
      }
      used = std::max(used, s.offset + KvSlotBytes(s.size));
      live_bytes += KvSlotBytes(s.size);
      ++live_count;
      if (s.dirty) {
        ++dirty_live;
      }
    }
    slab.used_bytes = used;
    slab.live_bytes = live_bytes;
    slab.live_count = live_count;
    slab.dirty_live = dirty_live;
    slab.sealed = true;
    slab.pages_spanned = std::max<uint32_t>(1, (used + kKvPageBytes - 1) / kKvPageBytes);
    std::vector<SscDevice::BlockInfo> infos;
    ssc_->ExistsDetail(SlabBaseLbn(seq), slab.pages_spanned, &infos);
    for (KvSlot& s : slab.slots) {
      if (!s.live) {
        continue;
      }
      const uint32_t first = s.offset / kKvPageBytes;
      const uint32_t last = (s.offset + KvSlotBytes(s.size) - 1) / kKvPageBytes;
      bool all_present = true;
      for (uint32_t p = first; p <= last; ++p) {
        all_present = all_present && infos[p].present;
      }
      if (all_present) {
        ++stats_.recovered_slots;
        continue;
      }
      key_map_.Erase(s.key);
      s.live = false;
      slab.live_bytes -= KvSlotBytes(s.size);
      --slab.live_count;
      if (s.dirty) {
        --slab.dirty_live;
        restage.push_back(s);
      } else {
        ++stats_.dropped_clean_slots;
      }
    }
    slab.dirty_written = slab.dirty_live > 0;
    if (!slab.dirty_written) {
      // The slab's last dirty object died in the log tail (its delete record
      // is durable), but the medium still carries the dirty marks. Hand the
      // surviving pages back to silent eviction exactly like
      // HandleSlabQuiescence would have before the crash.
      bool medium_dirty = false;
      for (uint32_t p = 0; p < slab.pages_spanned; ++p) {
        medium_dirty = medium_dirty || (infos[p].present && infos[p].dirty);
      }
      if (medium_dirty) {
        for (uint32_t p = 0; p < slab.pages_spanned; ++p) {
          const Status cleaned = ssc_->Clean(SlabBaseLbn(seq) + p);
          if (!IsOk(cleaned) && cleaned != Status::kNotPresent) {
            ++stats_.read_errors;
          }
        }
        ++stats_.slab_cleans;
      }
    }
    if (slab.live_count == 0) {
      dead_slabs.push_back(seq);
    }
  }
  for (const uint64_t seq : dead_slabs) {
    const uint32_t pages = slabs_.at(seq).pages_spanned;
    slabs_.erase(seq);
    // Pages may still be cached (live slots all deleted in the log tail);
    // evict them so no orphan flash pages outlive their directory entry.
    EvictSlabPages(seq, pages);
  }
  for (const KvSlot& s : restage) {
    const Status room = EnsureRoomFor(KvSlotBytes(s.size));
    if (!IsOk(room)) {
      return room;
    }
    KvSlab& open = slabs_.at(open_seq_);
    const auto slot_idx = static_cast<uint32_t>(open.slots.size());
    KvSlot staged = s;
    staged.live = true;  // `s` was marked dead in its lost slab above
    staged.offset = open.used_bytes;
    open.slots.push_back(staged);
    open.used_bytes += KvSlotBytes(staged.size);
    open.live_bytes += KvSlotBytes(staged.size);
    ++open.live_count;
    ++open.dirty_live;
    key_map_.Insert(staged.key, PackLoc(open_seq_, slot_idx));
    AppendInsertRecord(staged.key, open_seq_, staged, slot_idx, /*sync=*/true);
    ++stats_.restaged_dirty_slots;
  }
  return Status::kOk;
}

// ---------------------------------------------------------------------------
// KvCache
// ---------------------------------------------------------------------------

KvCache::KvCache(const KvCacheConfig& config) : config_(config) {
  config_.shards = std::max<uint32_t>(1, config_.shards);
  config_.slab_pages = SanitizeSlabPages(config_.slab_pages);
  router_.shards = config_.shards;
  shards_.reserve(config_.shards);
  for (uint32_t i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<KvShard>(config_, i));
  }
}

Status KvCache::Flush() {
  Status first = Status::kOk;
  for (auto& shard : shards_) {
    const Status st = shard->Flush();
    if (!IsOk(st) && IsOk(first)) {
      first = st;
    }
  }
  return first;
}

void KvCache::SimulateCrash() {
  for (auto& shard : shards_) {
    shard->SimulateCrash();
  }
}

Status KvCache::Recover() {
  Status first = Status::kOk;
  for (auto& shard : shards_) {
    const Status st = shard->Recover();
    if (!IsOk(st) && IsOk(first)) {
      first = st;
    }
  }
  return first;
}

KvStats KvCache::AggregateStats() const {
  KvStats out;
  for (const auto& shard : shards_) {
    out.Merge(shard->stats());
  }
  return out;
}

PolicyStats KvCache::AggregatePolicyStats() const {
  PolicyStats out;
  for (const auto& shard : shards_) {
    out.Merge(shard->policy().stats());
  }
  return out;
}

PersistStats KvCache::AggregatePersistStats() const {
  PersistStats out;
  for (const auto& shard : shards_) {
    out.Merge(shard->ssc().persist_stats());
  }
  return out;
}

FlashStats KvCache::AggregateFlashStats() const {
  FlashStats out;
  for (const auto& shard : shards_) {
    out.Merge(shard->ssc().flash_stats());
  }
  return out;
}

double KvCache::FlashWritesPerSet() const {
  const KvStats kv = AggregateStats();
  const FlashStats flash = AggregateFlashStats();
  const uint64_t admitted = kv.sets - kv.rejected_sets;
  return admitted == 0 ? 0.0
                       : static_cast<double>(flash.page_writes) / static_cast<double>(admitted);
}

}  // namespace flashtier
