// Counters for the tiny-object KV layer (DESIGN.md §5k).
//
// Determinism contract: every field is driven from a shard's sequential
// operation stream, Merge() is a plain field-wise sum, and merges happen in
// shard-index order — so the aggregated stats are bit-identical no matter
// how many replay threads drive the shards (replay_parallel asserts this
// with operator==).

#ifndef FLASHTIER_KV_KV_STATS_H_
#define FLASHTIER_KV_KV_STATS_H_

#include <cstdint>

namespace flashtier {

struct KvStats {
  // ---- Host operations ----
  uint64_t gets = 0;
  uint64_t hits = 0;            // gets served (open slab or flash)
  uint64_t open_slab_hits = 0;  // subset of hits served from the open slab
  uint64_t misses = 0;
  uint64_t sets = 0;
  uint64_t set_bytes = 0;    // object bytes of admitted sets
  uint64_t overwrites = 0;   // sets that replaced a cached version
  uint64_t rejected_sets = 0;  // admission policy demoted the set to disk-only
  uint64_t sets_refused_full = 0;  // kNoSpace: nothing clean left to evict
  uint64_t deletes = 0;
  uint64_t delete_misses = 0;

  // ---- Slab machinery ----
  uint64_t slab_fills = 0;        // open slabs sealed to flash
  uint64_t slab_page_writes = 0;  // flash page writes those seals issued
  uint64_t compactions = 0;       // victim slabs compacted away
  uint64_t compaction_aborts = 0;  // compactions stopped early (no room)
  uint64_t slots_moved = 0;        // live slots relocated by compaction
  uint64_t slots_reclaimed = 0;    // dead slots whose space compaction freed
  uint64_t slab_evictions = 0;     // clean sealed slabs evicted for capacity
  uint64_t evicted_slots = 0;      // live slots those evictions dropped
  uint64_t dead_slab_reclaims = 0;  // fully-dead sealed slabs reclaimed
  uint64_t lazy_slab_drops = 0;  // silent eviction discovered on a Get miss
  uint64_t dropped_slots = 0;    // live slots those drops retired
  uint64_t slab_cleans = 0;      // dirty slabs handed back to silent eviction
  uint64_t backpressure_stalls = 0;  // bounded log-drain retries on the Set path
  uint64_t read_errors = 0;   // slab page reads that failed with a medium error
  uint64_t lost_objects = 0;  // dirty objects lost to medium errors (must be 0
                              // without fault injection)

  // ---- Crash recovery ----
  uint64_t recoveries = 0;
  uint64_t recovered_slots = 0;       // live slots whose slab page survived
  uint64_t restaged_dirty_slots = 0;  // dirty slots rebuilt from the log (G1)
  uint64_t dropped_clean_slots = 0;   // clean slots silently forgotten (G2)

  // Accumulates another shard's counters; callers merge in shard order.
  void Merge(const KvStats& o) {
    gets += o.gets;
    hits += o.hits;
    open_slab_hits += o.open_slab_hits;
    misses += o.misses;
    sets += o.sets;
    set_bytes += o.set_bytes;
    overwrites += o.overwrites;
    rejected_sets += o.rejected_sets;
    sets_refused_full += o.sets_refused_full;
    deletes += o.deletes;
    delete_misses += o.delete_misses;
    slab_fills += o.slab_fills;
    slab_page_writes += o.slab_page_writes;
    compactions += o.compactions;
    compaction_aborts += o.compaction_aborts;
    slots_moved += o.slots_moved;
    slots_reclaimed += o.slots_reclaimed;
    slab_evictions += o.slab_evictions;
    evicted_slots += o.evicted_slots;
    dead_slab_reclaims += o.dead_slab_reclaims;
    lazy_slab_drops += o.lazy_slab_drops;
    dropped_slots += o.dropped_slots;
    slab_cleans += o.slab_cleans;
    backpressure_stalls += o.backpressure_stalls;
    read_errors += o.read_errors;
    lost_objects += o.lost_objects;
    recoveries += o.recoveries;
    recovered_slots += o.recovered_slots;
    restaged_dirty_slots += o.restaged_dirty_slots;
    dropped_clean_slots += o.dropped_clean_slots;
  }

  double HitRate() const {
    return gets == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(gets);
  }

  friend bool operator==(const KvStats&, const KvStats&) = default;
};

}  // namespace flashtier

#endif  // FLASHTIER_KV_KV_STATS_H_
