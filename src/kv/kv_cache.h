// KvCache: a tiny-object key-value cache layered over the SSC
// (DESIGN.md §5k).
//
// Memcached-style objects are 64 B to 4 KB — far below the SSC's 4 KB page —
// so caching one object per flash page wastes most of every program. The KV
// layer packs objects into slabs instead: each shard keeps one *open slab* (a
// device-RAM staging buffer of `slab_pages` pages) that Sets append into;
// when the next object no longer fits, the slab is *sealed* — its pages are
// written to the shard's SscDevice in one pass (write-dirty if any packed
// object is dirty, write-clean otherwise) — and a fresh open slab starts.
// Slab sequence numbers are monotonic and never reused, and a slab's pages
// occupy the contiguous LBN range [seq * slab_pages, (seq+1) * slab_pages),
// so the slab address space is sparse exactly the way the SSC expects.
//
// The object directory is a single-level hash map: key -> (slab seq, slot).
// Per-slab metadata tracks each slot's offset, size, dirtiness and liveness.
// Deletes and overwrites mark slots dead; when a sealed slab's dead-byte
// fraction crosses the compaction threshold, its live slots are moved to the
// open slab (each move an atomic delete-old + insert-new record pair) and the
// slab's pages are evicted — the reclaimed space feeds the SSC's normal
// allocator. Clean sealed slabs are also silently evictable by the SSC's
// SE-GC; the KV layer discovers that lazily when a Get's page read returns
// not-present and retires the whole slab (a legal G2 miss).
//
// Durability rides the shard's existing persistence log: every slot insert or
// delete appends a kKvInsertSlot/kKvDeleteSlot record carrying the packed
// slot metadata and the object's value token, and device checkpoints subsume
// the slot directory via the kv snapshot source. The orderings mirror the
// SSC's own (RAM update inside an atomic batch, then the log append; dirty
// and overwrite records sync) so G1-G3 extend to objects:
//   G1: an acknowledged dirty Set survives a crash — its record is durable
//       before the ack, and recovery re-stages dirty objects whose slab never
//       reached flash into a fresh open slab.
//   G2: a clean Set is new-data-or-miss — never stale. A rejected or crash-
//       lost clean object becomes a miss, and a rejected Set of a resident
//       key evicts the stale cached copy.
//   G3: an acknowledged Delete stays deleted — its record commits
//       synchronously before the ack.

#ifndef FLASHTIER_KV_KV_CACHE_H_
#define FLASHTIER_KV_KV_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/kv/kv_stats.h"
#include "src/policy/admission_policy.h"
#include "src/policy/policy_factory.h"
#include "src/sparsemap/sparse_hash_map.h"
#include "src/ssc/shard.h"
#include "src/ssc/ssc_device.h"
#include "src/trace/kv_trace.h"
#include "src/util/status.h"

namespace flashtier {

inline constexpr uint32_t kKvPageBytes = 4096;
// Modeled per-slot on-flash overhead: key + size + slot CRC. Charged against
// slab capacity so the packing arithmetic is honest about metadata.
inline constexpr uint32_t kKvSlotHeaderBytes = 24;

// Bytes a slot of `size` object bytes occupies in a slab (8-byte aligned).
constexpr uint32_t KvSlotBytes(uint32_t size) {
  return kKvSlotHeaderBytes + ((size + 7u) & ~7u);
}

struct KvCacheConfig {
  uint32_t shards = 1;
  // Device template for every shard; `ssc.capacity_pages` is the *total*
  // across shards and is split evenly (with a small floor) like
  // FlashTierSystem does, so shard counts don't change the cache size.
  SscConfig ssc;
  // Admission control, consulted per object Set; split across shards with
  // ShardPolicyConfig so total policy memory matches the 1-shard config.
  PolicyConfig admission;
  // Slab packing on (the design) or off (the naive one-object-per-slab
  // baseline bench_ablation_kv compares against — every Set seals its own
  // slab, costing a full page program per object).
  bool packing = true;
  // Slab span in flash pages. Must divide the 64-page logical erase block so
  // a slab can never straddle the SSC's block-mapping / SE-GC grain.
  uint32_t slab_pages = 1;
  // Compact when sealed slabs' dead bytes exceed this fraction of their used
  // bytes (and at least `compact_min_sealed_slabs` slabs are sealed).
  double compact_dead_ratio = 0.50;
  uint32_t compact_min_sealed_slabs = 8;
};

// One object's slot inside a slab.
struct KvSlot {
  uint64_t key = 0;
  uint64_t token = 0;   // value identity, verified by tests / flashcheck
  uint32_t size = 0;    // object bytes
  uint32_t offset = 0;  // byte offset of the slot within the slab
  bool dirty = false;
  bool live = false;
};

// One slab: the append-ordered slots plus occupancy bookkeeping.
struct KvSlab {
  std::vector<KvSlot> slots;
  uint32_t used_bytes = 0;  // append frontier (dead slots included)
  uint32_t live_bytes = 0;
  uint32_t live_count = 0;
  uint32_t dirty_live = 0;
  bool sealed = false;
  bool dirty_written = false;  // sealed via write-dirty
  uint32_t pages_spanned = 0;  // pages actually written at seal time
};

// One shard: a complete vertical KV slice — its own virtual clock, SscDevice,
// admission policy, open slab, slab directory and key map. Shards share no
// mutable state, so a shard's operation stream is a deterministic sequential
// computation no matter which replay thread drives it.
class KvShard {
 public:
  KvShard(const KvCacheConfig& config, uint32_t shard_index);

  // ---- The KV interface ----

  // Cache `key` -> `token` (`size` object bytes). Clean sets may be demoted
  // to disk-only by the admission policy (still kOk — the write went around
  // the cache); dirty sets of resident keys are always re-admitted.
  Status Set(uint64_t key, uint64_t token, uint32_t size, bool dirty);

  // Fetch a cached object, else kNotPresent. A page read that discovers a
  // silently evicted slab retires the slab's remaining slots (lazy drop).
  Status Get(uint64_t key, uint64_t* token_out);

  // Drop a cached object; the delete commits synchronously before returning
  // (the object analog of G3). kNotPresent if the key is not cached.
  Status Delete(uint64_t key);

  // Seals the open slab (if any) so every cached object is on flash; benches
  // call this before comparing flash-write counts.
  Status Flush();

  // ---- Crash simulation / recovery ----

  void SimulateCrash();
  Status Recover();

  // ---- Introspection ----

  const KvStats& stats() const { return stats_; }
  SimClock& clock() { return clock_; }
  const SimClock& clock() const { return clock_; }
  SscDevice& ssc() { return *ssc_; }
  const SscDevice& ssc() const { return *ssc_; }
  AdmissionPolicy& policy() { return *policy_; }
  const AdmissionPolicy& policy() const { return *policy_; }

  const std::map<uint64_t, KvSlab>& slabs() const { return slabs_; }
  const SparseHashMap<uint64_t, uint64_t>& key_map() const { return key_map_; }
  bool has_open_slab() const { return open_seq_ != kNoSlab; }
  uint64_t open_slab_seq() const { return open_seq_; }
  uint64_t next_slab_seq() const { return next_slab_seq_; }
  uint32_t slab_pages() const { return config_.slab_pages; }
  uint32_t slab_capacity_bytes() const { return slab_capacity_bytes_; }

  // ---- Location packing (shared with the invariant checker) ----

  static constexpr uint64_t kNoSlab = ~uint64_t{0};

  static uint64_t PackLoc(uint64_t seq, uint32_t slot) { return (seq << 16) | slot; }
  static uint64_t LocSeq(uint64_t packed) { return packed >> 16; }
  static uint32_t LocSlot(uint64_t packed) { return static_cast<uint32_t>(packed & 0xffff); }

  // Slot metadata as carried by kKvInsertSlot records and kv checkpoint
  // entries: slot index, object size, slab byte offset, dirty flag.
  static uint64_t PackSlotMeta(uint32_t slot, uint32_t size, uint32_t offset, bool dirty) {
    return static_cast<uint64_t>(slot) | (static_cast<uint64_t>(size) << 16) |
           (static_cast<uint64_t>(offset) << 32) | (dirty ? uint64_t{1} << 63 : 0);
  }
  static uint32_t MetaSlot(uint64_t meta) { return static_cast<uint32_t>(meta & 0xffff); }
  static uint32_t MetaSize(uint64_t meta) { return static_cast<uint32_t>((meta >> 16) & 0xffff); }
  static uint32_t MetaOffset(uint64_t meta) {
    return static_cast<uint32_t>((meta >> 32) & 0xffff);
  }
  static bool MetaDirty(uint64_t meta) { return (meta >> 63) != 0; }

  Lbn SlabBaseLbn(uint64_t seq) const { return seq * config_.slab_pages; }

 private:
  // Content-independent token for a slab's page `page` — slab pages carry
  // packed objects, not a single block's data, so their identity is derived
  // from the (never reused) sequence number.
  static uint64_t SlabPageToken(uint64_t seq, uint32_t page) {
    return MixHash64((seq << 8) ^ page ^ 0x6b76736c6162ull);  // "kvslab"
  }

  // Bounded log-region admission: drain-and-retry before giving up with
  // kBackpressure (no state change on refusal).
  Status AdmitWithDrain();
  // Guarantees an open slab with room for `charge` bytes, sealing the
  // current one if needed. On failure no open slab state has changed.
  Status EnsureRoomFor(uint32_t charge);
  void CreateOpenSlab();
  // Writes the open slab's pages to the SSC. On terminal failure the slab
  // stays open (objects remain readable from RAM, dirty ones durable in the
  // log) and any partially written pages are evicted.
  Status SealOpenSlab();
  // Evicts the oldest clean sealed slab to make device room. False if every
  // sealed slab still holds dirty objects.
  bool EvictCleanSlab();
  // Retires every live slot of slab `seq` (key map, policy OnEvict, logged
  // deletes in one atomic batch), evicts its pages and erases the directory
  // entry. `slot_counter` accumulates the live slots retired.
  void DropSlab(uint64_t seq, bool policy_evict, uint64_t* slot_counter);
  void EvictSlabPages(uint64_t seq, uint32_t pages);
  // Marks `key`'s slot dead, unmaps it and appends the delete record.
  // Returns the slab seq the slot lived in (for quiescence handling).
  uint64_t InvalidateKey(uint64_t key, bool sync);
  // A sealed slab just lost live or dirty slots: reclaim it when fully dead,
  // or hand it to silent eviction when its last dirty object went away.
  void HandleSlabQuiescence(uint64_t seq);
  void MaybeCompact();
  Status CompactSlab(uint64_t victim_seq);

  void AppendInsertRecord(uint64_t key, uint64_t seq, const KvSlot& slot, uint32_t slot_idx,
                          bool sync);

  // Checkpoint snapshot of the live slot directory (installed on the SSC).
  std::vector<CheckpointEntry> SnapshotSlots() const;
  void ApplyRecoveredInsert(uint64_t key, uint64_t seq, uint64_t meta, uint64_t token);
  void ApplyRecoveredDelete(uint64_t key);

  KvCacheConfig config_;  // per-shard: ssc/admission already sliced
  SimClock clock_;
  std::unique_ptr<SscDevice> ssc_;
  std::unique_ptr<AdmissionPolicy> policy_;

  // Slab directory. std::map: deterministic iteration order for checkpoint
  // snapshots, eviction scans and recovery reconciliation.
  std::map<uint64_t, KvSlab> slabs_;
  SparseHashMap<uint64_t, uint64_t> key_map_;  // key -> PackLoc(seq, slot)

  uint64_t next_slab_seq_ = 0;
  uint64_t open_seq_ = kNoSlab;
  uint32_t slab_capacity_bytes_ = kKvPageBytes;
  bool in_compaction_ = false;
  uint64_t compacting_seq_ = kNoSlab;  // shielded from capacity eviction

  KvStats stats_;
};

// The facade: routes each key to its shard (a pure function of the key) and
// aggregates per-shard metrics in shard order.
class KvCache {
 public:
  explicit KvCache(const KvCacheConfig& config);

  uint32_t ShardOf(uint64_t key) const { return router_.ShardOfKey(key); }

  Status Set(uint64_t key, uint64_t token, uint32_t size, bool dirty) {
    return shards_[ShardOf(key)]->Set(key, token, size, dirty);
  }
  Status Get(uint64_t key, uint64_t* token_out) {
    return shards_[ShardOf(key)]->Get(key, token_out);
  }
  Status Delete(uint64_t key) { return shards_[ShardOf(key)]->Delete(key); }

  // Seals every shard's open slab; returns the first error.
  Status Flush();

  void SimulateCrash();
  Status Recover();

  uint32_t shard_count() const { return static_cast<uint32_t>(shards_.size()); }
  KvShard& shard(uint32_t i) { return *shards_[i]; }
  const KvShard& shard(uint32_t i) const { return *shards_[i]; }

  // Cross-shard aggregates, merged in shard-index order.
  KvStats AggregateStats() const;
  PolicyStats AggregatePolicyStats() const;
  PersistStats AggregatePersistStats() const;
  FlashStats AggregateFlashStats() const;

  // Flash data-page writes per admitted set: the packing payoff metric
  // (EXPERIMENTS.md). Counts medium programs (seals, GC copies), not log
  // appends — those are accounted in PersistStats.
  double FlashWritesPerSet() const;

  const KvCacheConfig& config() const { return config_; }

 private:
  KvCacheConfig config_;
  ShardRouter router_;
  std::vector<std::unique_ptr<KvShard>> shards_;
};

}  // namespace flashtier

#endif  // FLASHTIER_KV_KV_CACHE_H_
