#include "src/kv/kv_replay.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "src/core/open_loop.h"

namespace flashtier {

namespace {

// Value identity for the `seq`-th trace record's Set: a pure function of
// (key, seq), so tokens do not depend on sharding or thread count.
uint64_t SetToken(uint64_t key, uint64_t seq) {
  return MixHash64(key ^ (seq * 0x9e3779b97f4a7c15ull) ^ 0x6b76746f6bull);  // "kvtok"
}

bool IsFailure(Status st) {
  return !IsOk(st) && st != Status::kNotPresent;
}

}  // namespace

void KvReplayEngine::ReplayShard(KvShard& shard, const std::vector<ShardRequest>& queue,
                                 ShardRun* run) const {
  const bool open_loop = options_.queue_depth > 1;
  OpenLoopQueue loop(&shard.clock(), options_.queue_depth);
  const uint64_t epoch_start = shard.clock().now_us();
  uint64_t first_submit = ~uint64_t{0};
  uint64_t last_done = 0;
  for (const ShardRequest& req : queue) {
    const uint64_t start_us = open_loop ? loop.Begin() : shard.clock().now_us();
    Status st = Status::kOk;
    switch (req.record.op) {
      case KvOp::kGet: {
        uint64_t token = 0;
        st = shard.Get(req.record.key, &token);
        break;
      }
      case KvOp::kSet:
        st = shard.Set(req.record.key, SetToken(req.record.key, req.seq), req.record.size,
                       options_.dirty_sets);
        break;
      case KvOp::kDelete:
        st = shard.Delete(req.record.key);
        break;
    }
    if (IsFailure(st)) {
      ++run->failed_requests;
    }
    ++run->requests;
    if (open_loop) {
      const uint64_t latency_us = loop.End(start_us);
      run->response_us.Add(latency_us);
      first_submit = std::min(first_submit, start_us);
      last_done = std::max(last_done, start_us + latency_us);
    } else {
      run->response_us.Add(shard.clock().now_us() - start_us);
    }
  }
  if (open_loop) {
    loop.Drain();
    run->elapsed_us = last_done >= first_submit ? last_done - first_submit : 0;
  } else {
    run->elapsed_us = shard.clock().now_us() - epoch_start;
  }
}

void KvReplayEngine::RecordWorkerError(const std::string& what) {
  MutexLock lock(&worker_error_mu_);
  if (worker_error_.empty()) {
    worker_error_ = what;
  }
}

KvReplayMetrics KvReplayEngine::Run(KvTraceSource& source) {
  KvReplayMetrics metrics;
  // flashlint: allow(wall-clock): host-side throughput measurement
  const auto wall_start = std::chrono::steady_clock::now();

  const uint32_t shard_count = cache_->shard_count();
  std::vector<std::vector<ShardRequest>> queues(shard_count);
  uint64_t seq = 0;
  KvTraceRecord record;
  while (source.Next(&record)) {
    queues[cache_->ShardOf(record.key)].push_back(ShardRequest{record, seq});
    ++seq;
  }

  std::vector<ShardRun> runs(shard_count);
  const uint32_t threads =
      std::min<uint32_t>(std::max<uint32_t>(1, options_.threads), shard_count);
  if (threads <= 1) {
    for (uint32_t i = 0; i < shard_count; ++i) {
      ReplayShard(cache_->shard(i), queues[i], &runs[i]);
    }
  } else {
    // Static shard→worker assignment, exactly like the block engine: shard i
    // is replayed whole by worker i % threads; shards share no mutable state.
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (uint32_t w = 0; w < threads; ++w) {
      workers.emplace_back([this, &queues, &runs, shard_count, threads, w] {
        try {
          for (uint32_t i = w; i < shard_count; i += threads) {
            ReplayShard(cache_->shard(i), queues[i], &runs[i]);
          }
        } catch (const std::exception& e) {
          RecordWorkerError(e.what());
        } catch (...) {
          RecordWorkerError("unknown exception in kv replay worker");
        }
      });
    }
    for (std::thread& t : workers) {
      t.join();
    }
    std::string error;
    {
      MutexLock lock(&worker_error_mu_);
      error = worker_error_;
    }
    if (!error.empty()) {
      throw std::runtime_error("kv replay worker failed: " + error);
    }
  }

  if (options_.flush_at_end) {
    const Status flushed = cache_->Flush();
    if (IsFailure(flushed)) {
      ++metrics.failed_requests;
    }
  }

  // Deterministic merge in shard-index order; elapsed time is the slowest
  // shard's epoch (the channels ran in parallel).
  for (uint32_t i = 0; i < shard_count; ++i) {
    metrics.requests += runs[i].requests;
    metrics.failed_requests += runs[i].failed_requests;
    metrics.elapsed_us = std::max(metrics.elapsed_us, runs[i].elapsed_us);
    metrics.response_us.Merge(runs[i].response_us);
  }
  metrics.kv = cache_->AggregateStats();
  metrics.policy = cache_->AggregatePolicyStats();
  metrics.persist = cache_->AggregatePersistStats();
  metrics.flash = cache_->AggregateFlashStats();
  metrics.flash_writes_per_set = cache_->FlashWritesPerSet();

  // flashlint: allow(wall-clock): host-side throughput measurement
  const auto wall_end = std::chrono::steady_clock::now();
  metrics.wall_clock_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(wall_end - wall_start).count());
  metrics.threads = threads;
  metrics.shards = shard_count;
  metrics.queue_depth = std::max<uint32_t>(1, options_.queue_depth);
  source.Rewind();
  return metrics;
}

}  // namespace flashtier
